open Domino_sim
module Summary = Domino_stats.Summary
module Json = Domino_stats.Json
module Tablefmt = Domino_stats.Tablefmt

let default_window = Time_ns.ms 100

(* --- windowed cadence driver --- *)

module Clock = struct
  type t = {
    window : Time_ns.span;
    mutable cbs : (index:int -> now:Time_ns.t -> unit) list;
        (** registration order *)
    mutable fired : int;
  }

  let create engine ~window =
    if window <= 0 then invalid_arg "Timeline.Clock.create: window must be > 0";
    let t = { window; cbs = []; fired = 0 } in
    ignore
      (Engine.every engine ~interval:window (fun () ->
           let index = t.fired in
           t.fired <- t.fired + 1;
           let now = Engine.now engine in
           List.iter (fun f -> f ~index ~now) t.cbs));
    t

  let window t = t.window

  let on_window t f = t.cbs <- t.cbs @ [ f ]

  let fired t = t.fired
end

(* --- data model --- *)

type point = {
  index : int;
  submits : int;
  commits : int;
  executes : int;
  drops : int;
  sync_writes : int;
  inflight : int;
  p50_ms : float;
  p99_ms : float;
}

type gauge_point = { g_index : int; mean : float; last : float }

type segment = {
  label : string;
  window : Time_ns.span;
  cluster : point array;
  groups : (int * point array) array;
  nodes : (int * point array) array;
  gauges : (string * gauge_point array) array;
  faults : (Time_ns.t * string * string) array;
  recoveries : (Time_ns.t * int * string) array;
}

type t = segment list

let rps ~window pt = float_of_int pt.commits *. 1e9 /. float_of_int window

let window_start_ms ~window i =
  float_of_int i *. (float_of_int window /. 1e6)

(* --- per-scope series accumulation --- *)

type series = {
  mutable pts : point list;  (** closed windows, newest first *)
  mutable idx : int;  (** currently open window *)
  mutable s : int;
  mutable c : int;
  mutable e : int;
  mutable d : int;
  mutable sy : int;
  mutable lat : float list;  (** commit latencies (ms) this window *)
  mutable cum_s : int;
  mutable cum_c : int;
}

let series () =
  {
    pts = [];
    idx = 0;
    s = 0;
    c = 0;
    e = 0;
    d = 0;
    sy = 0;
    lat = [];
    cum_s = 0;
    cum_c = 0;
  }

let close sr =
  let p50, p99 =
    match sr.lat with
    | [] -> (nan, nan)
    | lat ->
      let sm = Summary.create () in
      Summary.add_list sm lat;
      (Summary.percentile sm 50., Summary.percentile sm 99.)
  in
  sr.pts <-
    {
      index = sr.idx;
      submits = sr.s;
      commits = sr.c;
      executes = sr.e;
      drops = sr.d;
      sync_writes = sr.sy;
      (* Clamped: a commit whose submit predates the journal (ring
         truncation) bumps [cum_c] with no matching [cum_s]. *)
      inflight = Stdlib.max 0 (sr.cum_s - sr.cum_c);
      p50_ms = p50;
      p99_ms = p99;
    }
    :: sr.pts;
  sr.idx <- sr.idx + 1;
  sr.s <- 0;
  sr.c <- 0;
  sr.e <- 0;
  sr.d <- 0;
  sr.sy <- 0;
  sr.lat <- []

(* Journals are time-ordered within a segment, so [advance] only ever
   moves forward; a same-window event is a no-op. *)
let advance sr k = while sr.idx < k do close sr done

let collect sr ~upto =
  advance sr (upto + 1);
  Array.of_list (List.rev sr.pts)

type gseries = {
  mutable gpts : gauge_point list;  (** newest first *)
  mutable gidx : int;
  mutable gsum : float;
  mutable gcnt : int;
  mutable glast : float;
}

let gclose gs =
  if gs.gcnt > 0 then
    gs.gpts <-
      { g_index = gs.gidx; mean = gs.gsum /. float_of_int gs.gcnt;
        last = gs.glast }
      :: gs.gpts;
  gs.gidx <- gs.gidx + 1;
  gs.gsum <- 0.;
  gs.gcnt <- 0

let gadvance gs k = while gs.gidx < k do gclose gs done

(* --- streaming collector --- *)

type group_map = {
  groups : int;
  lookup : int -> int;  (** key -> group, under the CURRENT epoch *)
  migrate : slot:int -> to_g:int -> unit;
      (** applied on each [migrate.epoch] event so offline replay tracks
          ownership changes exactly as the live router did *)
}

type group_resolver = string -> group_map option

type opinfo = {
  submitted_at : Time_ns.t;
  group : int;  (** -1 when unattributed *)
  mutable committed : bool;
}

type seg_state = {
  mutable slabel : string;
  cluster_s : series;
  groups_t : (int, series) Hashtbl.t;
  nodes_t : (int, series) Hashtbl.t;
  gauges_t : (string, gseries) Hashtbl.t;
  mutable faults_r : (Time_ns.t * string * string) list;
  mutable recoveries_r : (Time_ns.t * int * string) list;
  ops : (int * int, opinfo) Hashtbl.t;
  mutable gmap : group_map option;
  mutable max_idx : int;  (** last window touched by a counted event *)
  mutable counted : int;
}

type agg = {
  win : Time_ns.span;
  resolver : group_resolver option;
  mutable seg : seg_state;
  mutable closed : segment list;  (** newest first *)
  mutable finished : bool;
}

let fresh_seg label =
  {
    slabel = label;
    cluster_s = series ();
    groups_t = Hashtbl.create 8;
    nodes_t = Hashtbl.create 16;
    gauges_t = Hashtbl.create 16;
    faults_r = [];
    recoveries_r = [];
    ops = Hashtbl.create 1024;
    gmap = None;
    max_idx = -1;
    counted = 0;
  }

let create ?(window = default_window) ?group_resolver () =
  if window <= 0 then invalid_arg "Timeline.create: window must be > 0";
  {
    win = window;
    resolver = group_resolver;
    seg = fresh_seg "";
    closed = [];
    finished = false;
  }

let window agg = agg.win

let apply_map seg gm =
  (* Only multi-group runs carry a group axis; pre-create every group's
     series so a group with no traffic still renders (all-zero). *)
  if gm.groups > 1 then begin
    seg.gmap <- Some gm;
    for g = 0 to gm.groups - 1 do
      if not (Hashtbl.mem seg.groups_t g) then
        Hashtbl.replace seg.groups_t g (series ())
    done
  end

let set_group_map agg gm = apply_map agg.seg gm

let sorted_bindings tbl cmp =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> cmp a b)

let build_segment win seg =
  let upto = Stdlib.max 0 seg.max_idx in
  {
    label = seg.slabel;
    window = win;
    cluster = collect seg.cluster_s ~upto;
    groups =
      sorted_bindings seg.groups_t Int.compare
      |> List.map (fun (g, sr) -> (g, collect sr ~upto))
      |> Array.of_list;
    nodes =
      sorted_bindings seg.nodes_t Int.compare
      |> List.map (fun (n, sr) -> (n, collect sr ~upto))
      |> Array.of_list;
    gauges =
      sorted_bindings seg.gauges_t String.compare
      |> List.map (fun (name, gs) ->
             gadvance gs (upto + 1);
             (name, Array.of_list (List.rev gs.gpts)))
      |> Array.of_list;
    faults = Array.of_list (List.rev seg.faults_r);
    recoveries = Array.of_list (List.rev seg.recoveries_r);
  }

let flush agg ~next_label =
  if agg.seg.counted > 0 then begin
    agg.closed <- build_segment agg.win agg.seg :: agg.closed;
    agg.seg <- fresh_seg next_label
  end
  else if agg.seg.slabel = "" then agg.seg.slabel <- next_label
(* A run of consecutive marks (sweep cell header, then the fabric's
   composition/slots marks) describes ONE segment: the first label
   names it, later ones only carry metadata. *)

let node_series seg n =
  match Hashtbl.find_opt seg.nodes_t n with
  | Some sr -> sr
  | None ->
    let sr = series () in
    Hashtbl.replace seg.nodes_t n sr;
    sr

let group_series seg g =
  if g < 0 then None
  else
    match Hashtbl.find_opt seg.groups_t g with
    | Some sr -> Some sr
    | None ->
      let sr = series () in
      Hashtbl.replace seg.groups_t g sr;
      Some sr

(* "recs=%d upto=%d dur_us=%d" (Store's sync detail) -> %d *)
let sync_recs detail =
  match String.split_on_char ' ' detail with
  | tok :: _ -> (
    match String.index_opt tok '=' with
    | Some i when String.sub tok 0 i = "recs" ->
      Option.value ~default:0
        (int_of_string_opt
           (String.sub tok (i + 1) (String.length tok - i - 1)))
    | _ -> 0)
  | [] -> 0

let feed agg ev =
  if agg.finished then invalid_arg "Timeline.feed: collector is finished";
  let seg = agg.seg in
  let win_of at = at / agg.win in
  let count at =
    seg.counted <- seg.counted + 1;
    let k = win_of at in
    if k > seg.max_idx then seg.max_idx <- k;
    k
  in
  match ev with
  | Journal.Mark { label; at = _ } -> (
    flush agg ~next_label:label;
    match agg.resolver with
    | Some resolve -> (
      match resolve label with
      | Some gm -> apply_map agg.seg gm
      | None -> ())
    | None -> ())
  | Submit { op; node; key; at } ->
    let k = count at in
    let group =
      match seg.gmap with
      | Some gm -> gm.lookup key
      | None -> -1
    in
    if not (Hashtbl.mem seg.ops op) then
      Hashtbl.replace seg.ops op
        { submitted_at = at; group; committed = false };
    let bump sr =
      advance sr k;
      sr.s <- sr.s + 1;
      sr.cum_s <- sr.cum_s + 1
    in
    bump seg.cluster_s;
    bump (node_series seg node);
    Option.iter bump (group_series seg group)
  | Commit { op; node; at } -> (
    let k = count at in
    let bump ?lat_ms sr =
      advance sr k;
      sr.c <- sr.c + 1;
      sr.cum_c <- sr.cum_c + 1;
      match lat_ms with
      | Some l -> sr.lat <- l :: sr.lat
      | None -> ()
    in
    match Hashtbl.find_opt seg.ops op with
    | Some info when info.committed -> ()  (* duplicate notification *)
    | Some info ->
      info.committed <- true;
      let lat_ms = Time_ns.to_ms_f (Time_ns.diff at info.submitted_at) in
      bump ~lat_ms seg.cluster_s;
      bump ~lat_ms (node_series seg node);
      Option.iter (bump ~lat_ms) (group_series seg info.group)
    | None ->
      (* Submit predates the journal (ring overflow / truncation):
         count the commit, no latency or group attribution. *)
      bump seg.cluster_s;
      bump (node_series seg node))
  | Execute { op; replica; at } ->
    let k = count at in
    let bump sr =
      advance sr k;
      sr.e <- sr.e + 1
    in
    bump seg.cluster_s;
    bump (node_series seg replica);
    (match Hashtbl.find_opt seg.ops op with
    | Some info -> Option.iter bump (group_series seg info.group)
    | None -> ())
  | Msg_dropped { dst; at; _ } ->
    let k = count at in
    let bump sr =
      advance sr k;
      sr.d <- sr.d + 1
    in
    bump seg.cluster_s;
    bump (node_series seg dst)
  | Store_ev { node; op = "sync"; detail; at } ->
    let k = count at in
    let n = sync_recs detail in
    let bump sr =
      advance sr k;
      sr.sy <- sr.sy + n
    in
    bump seg.cluster_s;
    bump (node_series seg node)
  | Sample { name; value; at } ->
    let k = count at in
    let gs =
      match Hashtbl.find_opt seg.gauges_t name with
      | Some gs -> gs
      | None ->
        let gs =
          { gpts = []; gidx = 0; gsum = 0.; gcnt = 0; glast = 0. }
        in
        Hashtbl.replace seg.gauges_t name gs;
        gs
    in
    gadvance gs k;
    gs.gsum <- gs.gsum +. value;
    gs.gcnt <- gs.gcnt + 1;
    gs.glast <- value
  | Fault { name = "drop"; _ } ->
    (* [Inject] journals every suppressed message as a [fault.drop] in
       addition to the regular [Msg_dropped] line; the latter already
       feeds the drops column, so keep the faults list to lifecycle
       events only. *)
    ()
  | Fault { name; detail; at } ->
    ignore (count at);
    seg.faults_r <- (at, name, detail) :: seg.faults_r
  | Recovery { node; stage; at; _ } ->
    ignore (count at);
    seg.recoveries_r <- (at, node, stage) :: seg.recoveries_r
  | Migrate { stage; slot; from_g; to_g; epoch; detail; at } -> (
    ignore (count at);
    let d =
      Printf.sprintf "slot=%d from=g%d to=g%d epoch=%d%s" slot from_g to_g
        epoch
        (if detail = "" then "" else " " ^ detail)
    in
    match stage with
    | "epoch" ->
      (* The live router is re-pointed immediately before this event is
         journaled, so mutating the replay map here keeps offline
         attribution byte-identical to the online tap. *)
      (match seg.gmap with
      | Some gm -> gm.migrate ~slot ~to_g
      | None -> ())
    | "freeze" -> seg.faults_r <- (at, "migrate", d) :: seg.faults_r
    | "done" | "abort" ->
      seg.faults_r <- (at, "migrate." ^ stage, d) :: seg.faults_r
    | _ -> ())
  | Reconfig { stage; group; epoch; detail; at } -> (
    ignore (count at);
    (* Details lead with [node=<n>] (when a node is affected) so the dip
       analyzer can match heals per node; group/epoch ride along. *)
    let d =
      let tail = Printf.sprintf "group=%d epoch=%d" group epoch in
      if detail = "" then tail else detail ^ " " ^ tail
    in
    match stage with
    | "epoch" -> ()  (* the externalization point, not an outage marker *)
    | "begin" -> seg.faults_r <- (at, "reconfig", d) :: seg.faults_r
    | _ -> seg.faults_r <- (at, "reconfig." ^ stage, d) :: seg.faults_r)
  | Store_ev _ | Msg_sent _ | Msg_delivered _ | Timer_fired _ | Phase _ -> ()

let absorb agg ~label t =
  if agg.finished then invalid_arg "Timeline.absorb: collector is finished";
  flush agg ~next_label:"";
  let relabel seg =
    let label =
      if seg.label = "" then label
      else if label = "" then seg.label
      else label ^ " " ^ seg.label
    in
    { seg with label }
  in
  List.iter (fun seg -> agg.closed <- relabel seg :: agg.closed) t

let finish agg =
  flush agg ~next_label:"";
  agg.finished <- true;
  List.rev agg.closed

let of_journal ?window ?group_resolver j =
  let agg = create ?window ?group_resolver () in
  Journal.iter j (feed agg);
  finish agg

(* --- rendering --- *)

let sanitize s = String.map (fun c -> if c = ',' then ';' else c) s

let fmt_f3 v = if Float.is_nan v then "" else Printf.sprintf "%.3f" v

let csv_header =
  "seg,label,scope,window,start_ms,submits,commits,rps,p50_ms,p99_ms,\
   inflight,drops,sync_writes"

let add_scope_rows buf ~seg_no ~label ~window ~scope pts =
  Array.iter
    (fun p ->
      Printf.bprintf buf "%d,%s,%s,%d,%.1f,%d,%d,%.3f,%s,%s,%d,%d,%d\n"
        seg_no label scope p.index
        (window_start_ms ~window p.index)
        p.submits p.commits (rps ~window p) (fmt_f3 p.p50_ms)
        (fmt_f3 p.p99_ms) p.inflight p.drops p.sync_writes)
    pts

let to_csv ?(per_node = false) t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf csv_header;
  Buffer.add_char buf '\n';
  List.iteri
    (fun seg_no seg ->
      let label = sanitize seg.label in
      let window = seg.window in
      add_scope_rows buf ~seg_no ~label ~window ~scope:"cluster" seg.cluster;
      Array.iter
        (fun (g, pts) ->
          add_scope_rows buf ~seg_no ~label ~window
            ~scope:(Printf.sprintf "g%d" g)
            pts)
        seg.groups;
      if per_node then
        Array.iter
          (fun (n, pts) ->
            add_scope_rows buf ~seg_no ~label ~window
              ~scope:(Printf.sprintf "n%d" n)
              pts)
          seg.nodes)
    t;
  Buffer.contents buf

let gauges_to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "seg,label,gauge,window,start_ms,mean,last\n";
  List.iteri
    (fun seg_no seg ->
      let label = sanitize seg.label in
      Array.iter
        (fun (name, gpts) ->
          Array.iter
            (fun g ->
              Printf.bprintf buf "%d,%s,%s,%d,%.1f,%.6g,%.6g\n" seg_no label
                (sanitize name) g.g_index
                (window_start_ms ~window:seg.window g.g_index)
                g.mean g.last)
            gpts)
        seg.gauges)
    t;
  Buffer.contents buf

let point_json ~window p =
  Json.Obj
    [
      ("window", Json.Int p.index);
      ("start_ms", Json.Float (window_start_ms ~window p.index));
      ("submits", Json.Int p.submits);
      ("commits", Json.Int p.commits);
      ("rps", Json.Float (rps ~window p));
      ("p50_ms", Json.Float p.p50_ms);
      ("p99_ms", Json.Float p.p99_ms);
      ("inflight", Json.Int p.inflight);
      ("drops", Json.Int p.drops);
      ("sync_writes", Json.Int p.sync_writes);
      ("executes", Json.Int p.executes);
    ]

let to_json t =
  let seg_json seg =
    let window = seg.window in
    let pts a = Json.List (Array.to_list a |> List.map (point_json ~window)) in
    Json.Obj
      [
        ("label", Json.String seg.label);
        ("window_ms", Json.Float (Time_ns.to_ms_f window));
        ("cluster", pts seg.cluster);
        ( "groups",
          Json.List
            (Array.to_list seg.groups
            |> List.map (fun (g, a) ->
                   Json.Obj [ ("group", Json.Int g); ("points", pts a) ])) );
        ( "nodes",
          Json.List
            (Array.to_list seg.nodes
            |> List.map (fun (n, a) ->
                   Json.Obj [ ("node", Json.Int n); ("points", pts a) ])) );
        ( "gauges",
          Json.List
            (Array.to_list seg.gauges
            |> List.map (fun (name, gpts) ->
                   Json.Obj
                     [
                       ("name", Json.String name);
                       ( "points",
                         Json.List
                           (Array.to_list gpts
                           |> List.map (fun g ->
                                  Json.Obj
                                    [
                                      ("window", Json.Int g.g_index);
                                      ("mean", Json.Float g.mean);
                                      ("last", Json.Float g.last);
                                    ])) );
                     ])) );
        ( "faults",
          Json.List
            (Array.to_list seg.faults
            |> List.map (fun (at, kind, detail) ->
                   Json.Obj
                     [
                       ("at_ms", Json.Float (Time_ns.to_ms_f at));
                       ("kind", Json.String kind);
                       ("detail", Json.String detail);
                     ])) );
        ( "recoveries",
          Json.List
            (Array.to_list seg.recoveries
            |> List.map (fun (at, node, stage) ->
                   Json.Obj
                     [
                       ("at_ms", Json.Float (Time_ns.to_ms_f at));
                       ("node", Json.Int node);
                       ("stage", Json.String stage);
                     ])) );
      ]
  in
  Json.Obj [ ("segments", Json.List (List.map seg_json t)) ]

let summary_table t =
  let tbl =
    Tablefmt.create ~title:"timeline summary"
      ~header:
        [ "seg"; "label"; "scope"; "windows"; "commits"; "mean_rps";
          "peak_p99_ms"; "faults" ]
  in
  List.iteri
    (fun seg_no seg ->
      let row scope pts =
        let commits = Array.fold_left (fun a p -> a + p.commits) 0 pts in
        let secs =
          float_of_int (Array.length pts)
          *. Time_ns.to_sec_f seg.window
        in
        let mean_rps = if secs > 0. then float_of_int commits /. secs else nan in
        let peak_p99 =
          Array.fold_left
            (fun a p ->
              if Float.is_nan p.p99_ms then a
              else if Float.is_nan a then p.p99_ms
              else Float.max a p.p99_ms)
            nan pts
        in
        Tablefmt.add_row tbl
          [
            string_of_int seg_no;
            (if seg.label = "" then "-" else seg.label);
            scope;
            string_of_int (Array.length pts);
            string_of_int commits;
            Tablefmt.cell_f mean_rps;
            Tablefmt.cell_f peak_p99;
            string_of_int (Array.length seg.faults);
          ]
      in
      row "cluster" seg.cluster;
      Array.iter
        (fun (g, pts) -> row (Printf.sprintf "g%d" g) pts)
        seg.groups)
    t;
  tbl
