module Json = Domino_stats.Json
module Tablefmt = Domino_stats.Tablefmt
open Domino_sim

type report = {
  seg : int;
  label : string;
  fault : string;
  detail : string;
  at_ms : float;
  heal_ms : float;
  baseline_rps : float;
  dip_rps : float;
  dip_pct : float;
  recovered_ms : float;
  ttr_ms : float;
  p99_base_ms : float;
  p99_spike_ms : float;
}

let is_start = function
  | "crash" | "wipe" | "partition" | "degrade" | "skew" | "migrate"
  | "reconfig" | "reconfig.transfer" | "reconfig.roll"
  | "reconfig.roll_node" ->
    true
  | _ -> false

let heal_kinds = function
  | "crash" -> [ "recover" ]
  | "partition" -> [ "heal" ]
  | "degrade" -> [ "restore" ]
  | "migrate" -> [ "migrate.done"; "migrate.abort" ]
  | "reconfig" -> [ "reconfig.done"; "reconfig.abort" ]
  | "reconfig.transfer" -> [ "reconfig.transfer_done" ]
  | "reconfig.roll" -> [ "reconfig.roll_done" ]
  | _ -> []
(* wipe and reconfig.roll_node heal via recovery.up (node-matched);
   skew is never healed *)

(* First token of a detail string: "node=3 ..." -> Some 3 for "node";
   "slot=5 from=g0 ..." -> Some 5 for "slot". *)
let first_field_of_detail key detail =
  match String.split_on_char ' ' detail with
  | tok :: _ -> (
    match String.index_opt tok '=' with
    | Some i when String.sub tok 0 i = key ->
      int_of_string_opt (String.sub tok (i + 1) (String.length tok - i - 1))
    | _ -> None)
  | [] -> None

let node_of_detail = first_field_of_detail "node"

let slot_of_detail = first_field_of_detail "slot"

let find_heal (seg : Timeline.segment) ~at ~kind ~detail =
  let node = node_of_detail detail in
  let slot = slot_of_detail detail in
  let best = ref None in
  let consider t = match !best with Some b when b <= t -> () | _ -> best := Some t in
  (match heal_kinds kind with
  | [] -> ()
  | hks ->
    Array.iter
      (fun (hat, hkind, hdetail) ->
        if
          (* >=, not >: a synchronous control hook (Domino/Mencius
             leader steering) journals transfer_done at the same
             timestamp as transfer; the kinds differ, so the start
             event itself can never match *)
          hat >= at
          && List.mem hkind hks
          && (node = None || node_of_detail hdetail = node)
          && (slot = None || slot_of_detail hdetail = slot)
        then consider hat)
      seg.Timeline.faults);
  if kind = "wipe" || kind = "reconfig.roll_node" then
    Array.iter
      (fun (rat, rnode, stage) ->
        if rat > at && stage = "up" && (node = None || node = Some rnode) then
          consider rat)
      seg.Timeline.recoveries;
  !best

let mean_opt = function
  | [] -> nan
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let analyze ?(baseline_windows = 10) ?(recover_within = 0.1) (t : Timeline.t) =
  let reports = ref [] in
  List.iteri
    (fun seg_no (seg : Timeline.segment) ->
      let window = seg.Timeline.window in
      let pts = seg.Timeline.cluster in
      let n = Array.length pts in
      let rps i = Timeline.rps ~window pts.(i) in
      let p99 i = pts.(i).Timeline.p99_ms in
      Array.iter
        (fun (at, kind, detail) ->
          if is_start kind then begin
            let fi = Stdlib.min (at / window) (n - 1) in
            let base_lo = Stdlib.max 0 (fi - baseline_windows) in
            let baseline_rps =
              mean_opt (List.init (fi - base_lo) (fun i -> rps (base_lo + i)))
            in
            let p99_base_ms =
              mean_opt
                (List.filter (fun v -> not (Float.is_nan v))
                   (List.init (fi - base_lo) (fun i -> p99 (base_lo + i))))
            in
            let thr = (1. -. recover_within) *. baseline_rps in
            (* Recovered at the first window back at threshold that is
               followed by another (or is the last) — a single lucky
               window inside an outage doesn't count. *)
            let recovered =
              if Float.is_nan thr then None
              else
                let rec go j =
                  if j >= n then None
                  else if rps j >= thr && (j + 1 >= n || rps (j + 1) >= thr)
                  then Some j
                  else go (j + 1)
                in
                go fi
            in
            let span_end = match recovered with Some j -> j | None -> n - 1 in
            let dip_rps = ref infinity and p99_spike_ms = ref nan in
            for j = fi to span_end do
              if rps j < !dip_rps then dip_rps := rps j;
              let v = p99 j in
              if not (Float.is_nan v) then
                p99_spike_ms :=
                  (if Float.is_nan !p99_spike_ms then v
                   else Float.max !p99_spike_ms v)
            done;
            let dip_rps = if n = 0 then nan else !dip_rps in
            let dip_pct =
              if Float.is_nan baseline_rps || baseline_rps <= 0. then nan
              else 100. *. (1. -. (dip_rps /. baseline_rps))
            in
            let at_ms = Time_ns.to_ms_f at in
            let recovered_ms =
              match recovered with
              | Some j ->
                Timeline.window_start_ms ~window (j + 1)
              | None -> nan
            in
            let heal_ms =
              match find_heal seg ~at ~kind ~detail with
              | Some t -> Time_ns.to_ms_f t
              | None -> nan
            in
            reports :=
              {
                seg = seg_no;
                label = seg.Timeline.label;
                fault = kind;
                detail;
                at_ms;
                heal_ms;
                baseline_rps;
                dip_rps;
                dip_pct;
                recovered_ms;
                ttr_ms = recovered_ms -. at_ms;
                p99_base_ms;
                p99_spike_ms = !p99_spike_ms;
              }
              :: !reports
          end)
        seg.Timeline.faults)
    t;
  List.rev !reports

(* --- rendering --- *)

let sanitize s = String.map (fun c -> if c = ',' then ';' else c) s

let fmt_f3 v = if Float.is_nan v then "" else Printf.sprintf "%.3f" v

let to_csv reports =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "seg,label,fault,detail,at_ms,heal_ms,baseline_rps,dip_rps,dip_pct,\
     ttr_ms,p99_base_ms,p99_spike_ms\n";
  List.iter
    (fun r ->
      Printf.bprintf buf "%d,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s\n" r.seg
        (sanitize r.label) r.fault (sanitize r.detail) (fmt_f3 r.at_ms)
        (fmt_f3 r.heal_ms) (fmt_f3 r.baseline_rps) (fmt_f3 r.dip_rps)
        (fmt_f3 r.dip_pct) (fmt_f3 r.ttr_ms) (fmt_f3 r.p99_base_ms)
        (fmt_f3 r.p99_spike_ms))
    reports;
  Buffer.contents buf

let to_json reports =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("seg", Json.Int r.seg);
             ("label", Json.String r.label);
             ("fault", Json.String r.fault);
             ("detail", Json.String r.detail);
             ("at_ms", Json.Float r.at_ms);
             ("heal_ms", Json.Float r.heal_ms);
             ("baseline_rps", Json.Float r.baseline_rps);
             ("dip_rps", Json.Float r.dip_rps);
             ("dip_pct", Json.Float r.dip_pct);
             ("recovered_ms", Json.Float r.recovered_ms);
             ("ttr_ms", Json.Float r.ttr_ms);
             ("p99_base_ms", Json.Float r.p99_base_ms);
             ("p99_spike_ms", Json.Float r.p99_spike_ms);
           ])
       reports)

let to_table reports =
  let tbl =
    Tablefmt.create ~title:"fault dips"
      ~header:
        [ "seg"; "label"; "fault"; "detail"; "at"; "base_rps"; "dip_rps";
          "dip%"; "ttr"; "p99_base"; "p99_spike" ]
  in
  List.iter
    (fun r ->
      Tablefmt.add_row tbl
        [
          string_of_int r.seg;
          (if r.label = "" then "-" else r.label);
          r.fault;
          r.detail;
          Tablefmt.cell_ms r.at_ms;
          Tablefmt.cell_f r.baseline_rps;
          Tablefmt.cell_f r.dip_rps;
          Tablefmt.cell_f r.dip_pct;
          (if Float.is_nan r.ttr_ms then "never" else Tablefmt.cell_ms r.ttr_ms);
          Tablefmt.cell_ms r.p99_base_ms;
          Tablefmt.cell_ms r.p99_spike_ms;
        ])
    reports;
  tbl
