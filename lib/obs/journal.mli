(** The flight recorder's event stream: a sim-time-stamped, bounded
    journal of everything observable about a run — message sends,
    deliveries and drops, periodic timer fires, protocol phase
    transitions, op lifecycle events, and sampled gauges.

    Like {!Trace}, the journal lives below [lib/smr] in the dependency
    order, so nodes are plain [int]s and operations are [(client,
    seq)] pairs; the layers above translate.

    Recording is opt-in via the {!sink} indirection: every emission
    site guards with {!enabled} (or calls {!emit}, which is a no-op on
    {!null}), so a run without a journal pays one [option]/variant
    match per hook, nothing more.

    Determinism: a journal records events in simulation order, which
    is a pure function of the seed. Parallel sweeps give each run its
    own journal and {!append} them in task-index order, so the merged
    stream — and {!to_lines} — is byte-identical for any [--jobs]. *)

open Domino_sim

type opid = int * int
(** (client node, per-client sequence) — [Op.id] flattened. *)

type event =
  | Submit of { op : opid; node : int; key : int; at : Time_ns.t }
  | Commit of { op : opid; node : int; at : Time_ns.t }
  | Execute of { op : opid; replica : int; at : Time_ns.t }
  | Msg_sent of {
      seq : int;
      src : int;
      dst : int;
      cls : string;
      op : opid option;
      at : Time_ns.t;
    }
  | Msg_delivered of {
      seq : int;
      src : int;
      dst : int;
      cls : string;
      op : opid option;
      sent_at : Time_ns.t;
      at : Time_ns.t;
    }
  | Msg_dropped of {
      seq : int;  (** [-1] when dropped before a sequence number was assigned *)
      src : int;
      dst : int;
      cls : string;
      reason : string;
      at : Time_ns.t;
    }
  | Timer_fired of { at : Time_ns.t }
  | Phase of {
      node : int;
      op : opid option;
      name : string;
      dur : Time_ns.span;  (** [0] for instantaneous transitions *)
      at : Time_ns.t;
    }
  | Sample of { name : string; value : float; at : Time_ns.t }
  | Mark of { label : string; at : Time_ns.t }
  | Fault of { name : string; detail : string; at : Time_ns.t }
      (** An injected fault (or its heal), recorded by [Fault.Inject] so
          journals — and Perfetto traces — show exactly when the network
          or a node misbehaved. Rendered as [fault.<name> <detail>]. *)
  | Store_ev of { node : int; op : string; detail : string; at : Time_ns.t }
      (** A stable-storage operation at a node — [append], [sync],
          [truncate], [snapshot] — recorded by [Store] so journals show
          what reached disk and when. Rendered as
          [store.<op> node=<n> <detail>]. *)
  | Recovery of { node : int; stage : string; detail : string; at : Time_ns.t }
      (** A node-recovery lifecycle event — [wipe] (volatile state and
          unsynced log tail lost), [replay] (durable state reloaded),
          [up] (node back online) — its own event class so replay
          progress is visible in the flight recorder, distinct from the
          [fault.*] events that caused it. Rendered as
          [recovery.<stage> node=<n> <detail>]. *)
  | Migrate of {
      stage : string;
      slot : int;
      from_g : int;
      to_g : int;
      epoch : int;
      detail : string;
      at : Time_ns.t;
    }
      (** A slot-migration lifecycle event emitted by [Shard.Migrate] —
          [freeze] (source stops accepting the slot, new submits queue),
          [drain] (in-flight ops on the slot settled or deadline hit),
          [transfer] (key state snapshotted and installed at the
          destination), [epoch] (the router's versioned assignment
          bumped: from this event on the slot belongs to [to_g]),
          [done] / [abort] (queue flushed; migration over). Offline
          replay uses the [epoch] events to attribute each key to the
          correct group per epoch. NOT a [Mark]: a migration happens
          mid-run and must not split the checker/timeline segment.
          Rendered as
          [migrate.<stage> slot=<s> from=g<a> to=g<b> epoch=<e> <detail>]. *)
  | Reconfig of {
      stage : string;
      group : int;
      epoch : int;
      detail : string;
      at : Time_ns.t;
    }
      (** A membership-reconfiguration / rolling-patch lifecycle event.
          Membership change ([Smr.Reconfig]): [begin] (group frozen,
          drain started), [epoch] (new config persisted on every member
          and the membership epoch bumped — the externalization point),
          [done] (submits released under the new config), [abort].
          Leader transfer: [transfer] / [transfer_done]. Rolling patch
          ([Fault.Roll]): [roll] (roll started), [roll_node] (a node
          taken down for its wipe-upgrade), [roll_done]. Details lead
          with [node=<n>] where a node is affected so dip reports can
          attribute the event. Like [Migrate], NOT a [Mark] — a
          reconfiguration happens mid-run and must not split the
          checker/timeline segment. Rendered as
          [reconfig.<stage> group=<g> epoch=<e> <detail>]. *)

type t

val create : ?capacity:int -> unit -> t
(** A fresh journal holding at most [capacity] events (default 2^20).
    When full, the oldest events are overwritten (ring buffer) and
    {!dropped} counts them. *)

val capacity : t -> int

val record : t -> event -> unit

val length : t -> int
(** Events currently held (≤ capacity). *)

val recorded : t -> int
(** Total events ever recorded, including overwritten ones. *)

val dropped : t -> int
(** Events lost to ring overwrite: [recorded - length]. *)

val iter : t -> (event -> unit) -> unit
(** Oldest to newest. *)

val to_array : t -> event array

val append : t -> t -> unit
(** [append dst src] records every event of [src] into [dst], in
    order. Used by the sweep runner to merge per-run journals
    deterministically. *)

val set_tap : t -> (event -> unit) option -> unit
(** Install (or clear) a tap invoked on every event recorded from now
    on — including events copied in by {!append}. Unlike the ring, a
    tap sees the complete stream even past overwrite, which is how
    online timeline aggregation stays exact on long runs. Costs one
    option match per recorded event; a journal-less run is
    unaffected. *)

(** {2 Emission sink} *)

type sink = Null | Rec of t

val null : sink

val sink : t -> sink

val enabled : sink -> bool

val emit : sink -> event -> unit

(** {2 Serialization} *)

val pp_event : Buffer.t -> event -> unit
(** One line, no trailing newline. Deterministic: same events, same
    bytes. *)

val to_lines : t -> string
(** The whole journal, one event per line (each newline-terminated). *)

val parse_line : string -> (event, string) result
(** The exact inverse of {!pp_event}: parsing a rendered line yields
    the original event, and re-rendering a parsed line yields the
    original bytes (QCheck-pinned). This is what makes journal files on
    disk a real interchange format — the [analyze] subcommand replays
    them offline. *)

val of_lines : string -> (t, string) result
(** Parse a whole rendered journal (as produced by {!to_lines}); blank
    lines are skipped. Errors carry the 1-based line number. *)

(** {2 Segmentation} *)

val segment_label : event -> string option
(** [Some label] when the event is a segment boundary — a [Mark]. The
    shared rule by which both the chaos checker and timelines split a
    sweep-merged journal back into per-run segments. *)
