open Domino_sim

type t = {
  journal : Journal.t;
  sink : Journal.sink;
  mutable probes : (string * (unit -> float)) list;  (** registration order *)
  mutable clock : Timeline.Clock.t option;
}

let attach ?sample_every ?timeline journal engine =
  let sink = Journal.sink journal in
  (match timeline with
  | None -> ()
  | Some agg -> Journal.set_tap journal (Some (Timeline.feed agg)));
  let t = { journal; sink; probes = []; clock = None } in
  Engine.set_timer_hook engine (fun at ->
      Journal.emit sink (Journal.Timer_fired { at }));
  (match sample_every with
  | None -> ()
  | Some interval ->
    (* The sampling cadence is a Timeline.Clock so other windowed
       consumers (e.g. the shard fabric's hot-shard detector) can share
       the same driver. Clock.create schedules the same Engine.every
       the sampler always used, so journal bytes are unchanged. *)
    let clock = Timeline.Clock.create engine ~window:interval in
    Timeline.Clock.on_window clock (fun ~index:_ ~now:at ->
        List.iter
          (fun (name, probe) ->
            Journal.emit sink (Journal.Sample { name; value = probe (); at }))
          t.probes);
    t.clock <- Some clock);
  t

let add_probe t name probe = t.probes <- t.probes @ [ (name, probe) ]

let journal t = t.journal

let sink t = t.sink

let clock t = t.clock
