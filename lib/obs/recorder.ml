open Domino_sim

type t = {
  journal : Journal.t;
  sink : Journal.sink;
  mutable probes : (string * (unit -> float)) list;  (** registration order *)
}

let attach ?sample_every journal engine =
  let sink = Journal.sink journal in
  let t = { journal; sink; probes = [] } in
  Engine.set_timer_hook engine (fun at ->
      Journal.emit sink (Journal.Timer_fired { at }));
  (match sample_every with
  | None -> ()
  | Some interval ->
    ignore
      (Engine.every engine ~interval (fun () ->
           let at = Engine.now engine in
           List.iter
             (fun (name, probe) ->
               Journal.emit sink (Journal.Sample { name; value = probe (); at }))
             t.probes)));
  t

let add_probe t name probe = t.probes <- t.probes @ [ (name, probe) ]

let journal t = t.journal

let sink t = t.sink
