open Domino_sim

type opid = int * int

type event =
  | Submit of { op : opid; node : int; at : Time_ns.t }
  | Sent of {
      op : opid;
      seq : int;
      src : int;
      dst : int;
      cls : string;
      at : Time_ns.t;
    }
  | Delivered of {
      op : opid;
      seq : int;
      src : int;
      dst : int;
      cls : string;
      sent_at : Time_ns.t;
      at : Time_ns.t;
    }
  | Committed of { op : opid; node : int; at : Time_ns.t }
  | Executed of { op : opid; replica : int; at : Time_ns.t }

let event_op = function
  | Submit { op; _ }
  | Sent { op; _ }
  | Delivered { op; _ }
  | Committed { op; _ }
  | Executed { op; _ } -> op

type t = { mutable focus : opid option; mutable events : event list }

type sink = Null | Rec of t

let null = Null

let create () = { focus = None; events = [] }

let sink t = Rec t

let set_focus t op = t.focus <- Some op

let focus t = t.focus

let enabled = function Null -> false | Rec t -> t.focus <> None

let emit sink event =
  match sink with
  | Null -> ()
  | Rec t -> begin
    match t.focus with
    | Some f when f = event_op event -> t.events <- event :: t.events
    | _ -> ()
  end

let events t = List.rev t.events

(* --- span tree rendering --- *)

let ms at = Printf.sprintf "%.3fms" (Time_ns.to_ms_f at)

let span_ms a b = Printf.sprintf "+%.3fms" (Time_ns.to_ms_f (Time_ns.diff b a))

let label base = function
  | Submit { node; at; _ } ->
    Printf.sprintf "submit at n%d @ %s" node (ms at)
  | Sent { src; dst; cls; at; _ } ->
    Printf.sprintf "%s n%d->n%d @ %s (%s)" cls src dst (ms at) (span_ms base at)
  | Delivered { src; dst; cls; sent_at; at; _ } ->
    Printf.sprintf "deliver %s n%d->n%d @ %s (wire %s)" cls src dst (ms at)
      (span_ms sent_at at)
  | Committed { node; at; _ } ->
    Printf.sprintf "commit learned at n%d @ %s (%s)" node (ms at)
      (span_ms base at)
  | Executed { replica; at; _ } ->
    Printf.sprintf "execute at replica n%d @ %s (%s)" replica (ms at)
      (span_ms base at)

let span_tree t =
  match events t with
  | [] -> ""
  | evs ->
    let evs = Array.of_list evs in
    let n = Array.length evs in
    (* Causal parent of event i, as an index < i; -1 = root. In a
       single-threaded simulation, anything a node does at instant T
       happens inside the latest handler that ran at that node, so the
       parent of a send (or commit/execute) at node X is the most
       recent delivery at X; a delivery's parent is its send. *)
    let latest_delivery_at ~before node =
      let found = ref (-1) in
      for j = 0 to before - 1 do
        match evs.(j) with
        | Delivered { dst; _ } when dst = node -> found := j
        | _ -> ()
      done;
      !found
    in
    let latest_submit_at ~before node =
      let found = ref (-1) in
      for j = 0 to before - 1 do
        match evs.(j) with
        | Submit { node = m; _ } when m = node -> found := j
        | _ -> ()
      done;
      !found
    in
    let sent_index seq =
      let found = ref (-1) in
      Array.iteri
        (fun j e ->
          match e with Sent { seq = s; _ } when s = seq -> found := j | _ -> ())
        evs;
      !found
    in
    let parent i =
      match evs.(i) with
      | Submit _ -> -1
      | Delivered { seq; _ } -> sent_index seq
      | Sent { src; _ } ->
        let d = latest_delivery_at ~before:i src in
        if d >= 0 then d else latest_submit_at ~before:i src
      | Committed { node; _ } ->
        let d = latest_delivery_at ~before:i node in
        if d >= 0 then d else latest_submit_at ~before:i node
      | Executed { replica; _ } ->
        let d = latest_delivery_at ~before:i replica in
        if d >= 0 then d else latest_submit_at ~before:i replica
    in
    let children = Array.make n [] in
    let roots = ref [] in
    for i = n - 1 downto 0 do
      let p = parent i in
      if p >= 0 then children.(p) <- i :: children.(p)
      else roots := i :: !roots
    done;
    let time_of = function
      | Submit { at; _ }
      | Sent { at; _ }
      | Delivered { at; _ }
      | Committed { at; _ }
      | Executed { at; _ } -> at
    in
    let base = time_of evs.(0) in
    let buf = Buffer.create 512 in
    let cli, seq_ = event_op evs.(0) in
    Buffer.add_string buf (Printf.sprintf "op n%d#%d\n" cli seq_);
    let rec render prefix is_last i =
      Buffer.add_string buf prefix;
      Buffer.add_string buf (if is_last then "`- " else "|- ");
      Buffer.add_string buf (label base evs.(i));
      Buffer.add_char buf '\n';
      let child_prefix = prefix ^ (if is_last then "   " else "|  ") in
      let kids = children.(i) in
      let rec go = function
        | [] -> ()
        | [ k ] -> render child_prefix true k
        | k :: rest ->
          render child_prefix false k;
          go rest
      in
      go kids
    in
    let rec go = function
      | [] -> ()
      | [ r ] -> render "" true r
      | r :: rest ->
        render "" false r;
        go rest
    in
    go !roots;
    Buffer.contents buf
