(** Per-operation message tracing.

    A trace follows one command through the whole replication stack:
    the client submit, every protocol message that carries the
    operation (tagged with its {!Msg_class}-style label by the
    protocol's classifier), the commit at the submitting client, and
    the executions at the replicas. Events are recorded by the
    {!Fifo_net} trace hook and by the experiment harness's observer,
    then rendered as a causally-ordered span tree.

    Causality needs no extra plumbing: the simulator is
    single-threaded, so a message sent by node [n] was sent from inside
    the handler of the most recent delivery at [n] — the recorder
    recovers parent/child edges from event order alone.

    The [sink] is the zero-cost-when-disabled half: {!null} makes every
    hook a no-op (callers guard event construction with {!enabled}),
    and a recording sink only keeps events for its focused operation,
    so tracing one op out of millions stays O(events of that op). *)

open Domino_sim

type opid = int * int
(** (client node, per-client sequence) — structurally [Op.id], spelled
    out here so lib/obs stays below lib/smr in the dependency order. *)

type event =
  | Submit of { op : opid; node : int; at : Time_ns.t }
  | Sent of {
      op : opid;
      seq : int;  (** network-wide message sequence, pairs with Delivered *)
      src : int;
      dst : int;
      cls : string;
      at : Time_ns.t;
    }
  | Delivered of {
      op : opid;
      seq : int;
      src : int;
      dst : int;
      cls : string;
      sent_at : Time_ns.t;
      at : Time_ns.t;
    }
  | Committed of { op : opid; node : int; at : Time_ns.t }
  | Executed of { op : opid; replica : int; at : Time_ns.t }

type t
(** A recording trace. *)

type sink

val null : sink
(** Discards everything; {!enabled} is [false]. *)

val create : unit -> t
(** A recorder with no focus yet: records nothing until {!set_focus}. *)

val sink : t -> sink

val set_focus : t -> opid -> unit
(** Start keeping events tagged with this operation (one focus per
    recorder; re-focusing clears nothing, earlier events remain). *)

val focus : t -> opid option

val enabled : sink -> bool
(** [true] iff the sink records (a focused recorder): hook sites check
    this before building an event. *)

val emit : sink -> event -> unit
(** Record the event if the sink is enabled and the event's [op]
    matches the focus. *)

val events : t -> event list
(** In record (= simulated-time) order. *)

val span_tree : t -> string
(** The focused op's life as an indented tree: submit at the root, each
    message as [cls src->dst @ send (+delay)] nested under the delivery
    that caused it, commit and executions as leaves. Deterministic:
    same seed, same tree. Empty string when nothing was recorded. *)
