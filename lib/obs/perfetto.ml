module Json = Domino_stats.Json

(* Trace-event timestamps are microseconds; sim-time is integer
   nanoseconds, so this is exact to 1/1000 µs and deterministic. *)
let us ns = float_of_int ns /. 1000.

let opid_str (c, s) = Printf.sprintf "%d#%d" c s

let op_args = function
  | None -> []
  | Some id -> [ ("args", Json.Obj [ ("op", Json.String (opid_str id)) ]) ]

let slice ~name ~cat ~tid ~ts ~dur extra =
  Json.Obj
    ([
       ("name", Json.String name);
       ("cat", Json.String cat);
       ("ph", Json.String "X");
       ("ts", Json.Float (us ts));
       ("dur", Json.Float (us dur));
       ("pid", Json.Int 0);
       ("tid", Json.Int tid);
     ]
    @ extra)

let instant ~name ~scope ~tid ~ts extra =
  Json.Obj
    ([
       ("name", Json.String name);
       ("ph", Json.String "i");
       ("s", Json.String scope);
       ("ts", Json.Float (us ts));
       ("pid", Json.Int 0);
       ("tid", Json.Int tid);
     ]
    @ extra)

let flow ~start ~name ~id ~tid ~ts =
  Json.Obj
    ([
       ("name", Json.String name);
       ("cat", Json.String "msg");
       ("ph", Json.String (if start then "s" else "f"));
     ]
    @ (if start then [] else [ ("bp", Json.String "e") ])
    @ [
        ("id", Json.Int id);
        ("ts", Json.Float (us ts));
        ("pid", Json.Int 0);
        ("tid", Json.Int tid);
      ])

let counter ~name ~ts ~value =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "C");
      ("ts", Json.Float (us ts));
      ("pid", Json.Int 0);
      ("tid", Json.Int 0);
      ("args", Json.Obj [ ("value", Json.Float value) ]);
    ]

(* A message's anchor slices: flow arrows must start and finish inside
   a slice, so each send/delivery gets a 1µs sliver on its track. *)
let anchor_dur = 1000

(* Timeline windows render as extra counter tracks ("timeline.<scope>.rps"
   etc.) stamped at each window start, so the windowed view overlays the
   raw per-event slices in the trace UI. *)
let timeline_counters tl =
  let out = ref [] in
  let push e = out := e :: !out in
  List.iter
    (fun (seg : Timeline.segment) ->
      let window = seg.Timeline.window in
      let track scope pts =
        Array.iter
          (fun (p : Timeline.point) ->
            let ts =
              int_of_float (Timeline.window_start_ms ~window p.Timeline.index *. 1e6)
            in
            let c name value =
              if not (Float.is_nan value) then
                push (counter ~name:(Printf.sprintf "timeline.%s.%s" scope name)
                        ~ts ~value)
            in
            c "rps" (Timeline.rps ~window p);
            c "inflight" (float_of_int p.Timeline.inflight);
            c "p99_ms" p.Timeline.p99_ms)
          pts
      in
      track "cluster" seg.Timeline.cluster;
      Array.iter
        (fun (g, pts) -> track (Printf.sprintf "g%d" g) pts)
        seg.Timeline.groups)
    tl;
  List.rev !out

let of_journal ?timeline j =
  (* Pass 1: the set of node tracks, in id order. *)
  let nodes = Hashtbl.create 16 in
  let note n = Hashtbl.replace nodes n () in
  Journal.iter j (fun ev ->
      match ev with
      | Journal.Submit { node; _ } | Journal.Commit { node; _ }
      | Journal.Phase { node; _ } ->
        note node
      | Journal.Execute { replica; _ } -> note replica
      | Journal.Msg_sent { src; dst; _ }
      | Journal.Msg_delivered { src; dst; _ }
      | Journal.Msg_dropped { src; dst; _ } ->
        note src;
        note dst
      | Journal.Store_ev { node; _ } | Journal.Recovery { node; _ } ->
        note node
      | Journal.Timer_fired _ | Journal.Sample _ | Journal.Mark _
      | Journal.Fault _ | Journal.Migrate _ | Journal.Reconfig _ -> ());
  let node_ids =
    List.sort compare (Hashtbl.fold (fun n () acc -> n :: acc) nodes [])
  in
  let metadata =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.String "domino-sim") ]);
      ]
    :: List.concat_map
         (fun n ->
           [
             Json.Obj
               [
                 ("name", Json.String "thread_name");
                 ("ph", Json.String "M");
                 ("pid", Json.Int 0);
                 ("tid", Json.Int n);
                 ("args",
                  Json.Obj [ ("name", Json.String (Printf.sprintf "node %d" n)) ]);
               ];
             Json.Obj
               [
                 ("name", Json.String "thread_sort_index");
                 ("ph", Json.String "M");
                 ("pid", Json.Int 0);
                 ("tid", Json.Int n);
                 ("args", Json.Obj [ ("sort_index", Json.Int n) ]);
               ];
           ])
         node_ids
  in
  (* Pass 2: the events themselves, in journal order. *)
  let out = ref [] in
  let push e = out := e :: !out in
  Journal.iter j (fun ev ->
      match ev with
      | Journal.Submit { op; node; at; _ } ->
        push
          (instant ~name:("submit " ^ opid_str op) ~scope:"t" ~tid:node ~ts:at
             [])
      | Journal.Commit { op; node; at } ->
        push
          (instant ~name:("commit " ^ opid_str op) ~scope:"t" ~tid:node ~ts:at
             [])
      | Journal.Execute { op; replica; at } ->
        push
          (instant ~name:("execute " ^ opid_str op) ~scope:"t" ~tid:replica
             ~ts:at [])
      | Journal.Msg_sent { seq; src; cls; op; at; _ } ->
        push (slice ~name:cls ~cat:"msg" ~tid:src ~ts:at ~dur:anchor_dur
                (op_args op));
        if seq >= 0 then push (flow ~start:true ~name:cls ~id:seq ~tid:src ~ts:at)
      | Journal.Msg_delivered { seq; dst; cls; op; at; _ } ->
        push (slice ~name:cls ~cat:"msg" ~tid:dst ~ts:at ~dur:anchor_dur
                (op_args op));
        if seq >= 0 then
          push (flow ~start:false ~name:cls ~id:seq ~tid:dst ~ts:at)
      | Journal.Msg_dropped { dst; cls; reason; at; _ } ->
        push
          (instant
             ~name:(Printf.sprintf "drop %s (%s)" cls reason)
             ~scope:"t" ~tid:dst ~ts:at [])
      | Journal.Phase { node; op; name; dur; at } ->
        if dur > 0 then
          push (slice ~name ~cat:"phase" ~tid:node ~ts:at ~dur (op_args op))
        else push (instant ~name ~scope:"t" ~tid:node ~ts:at (op_args op))
      | Journal.Sample { name; value; at } ->
        push (counter ~name ~ts:at ~value)
      | Journal.Mark { label; at } ->
        push (instant ~name:label ~scope:"g" ~tid:0 ~ts:at [])
      | Journal.Fault { name; detail; at } ->
        push
          (instant
             ~name:(Printf.sprintf "fault.%s %s" name detail)
             ~scope:"g" ~tid:0 ~ts:at [])
      | Journal.Store_ev { node; op; detail; at } ->
        push
          (instant
             ~name:(Printf.sprintf "store.%s %s" op detail)
             ~scope:"t" ~tid:node ~ts:at [])
      | Journal.Recovery { node; stage; detail; at } ->
        push
          (instant
             ~name:(Printf.sprintf "recovery.%s %s" stage detail)
             ~scope:"t" ~tid:node ~ts:at [])
      | Journal.Migrate { stage; slot; from_g; to_g; epoch; at; _ } ->
        push
          (instant
             ~name:
               (Printf.sprintf "migrate.%s slot=%d g%d>g%d epoch=%d" stage
                  slot from_g to_g epoch)
             ~scope:"g" ~tid:0 ~ts:at [])
      | Journal.Reconfig { stage; group; epoch; detail; at } ->
        push
          (instant
             ~name:
               (Printf.sprintf "reconfig.%s group=%d epoch=%d%s" stage group
                  epoch
                  (if detail = "" then "" else " " ^ detail))
             ~scope:"g" ~tid:0 ~ts:at [])
      | Journal.Timer_fired _ -> ());
  let extra =
    match timeline with None -> [] | Some tl -> timeline_counters tl
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metadata @ List.rev !out @ extra));
      ("displayTimeUnit", Json.String "ms");
    ]

let to_string ?timeline j = Json.to_string (of_journal ?timeline j) ^ "\n"
