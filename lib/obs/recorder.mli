(** The flight recorder: binds a {!Journal} to a live simulation
    engine.

    Attaching installs the engine's periodic-timer hook (every timer
    fire becomes a [Timer_fired] event) and, when [sample_every] is
    given, a sampling loop that snapshots every registered gauge probe
    into [Sample] events at that fixed sim-time cadence. Probes run in
    registration order, so the sample stream is deterministic.

    Nothing here touches the fire-once scheduling hot path: the timer
    hook only fires on periodic events, and with no recorder attached
    the engine pays a single [option] match per periodic fire. *)

open Domino_sim

type t

val attach :
  ?sample_every:Time_ns.span ->
  ?timeline:Timeline.agg ->
  Journal.t ->
  Engine.t ->
  t
(** Install the hooks. One recorder per engine: attaching replaces any
    previously installed timer hook. With [timeline], every recorded
    journal event is also fed to the aggregator (a {!Journal.set_tap}),
    building the windowed timeline online as the run executes; without
    it nothing timeline-related touches the hot path. *)

val add_probe : t -> string -> (unit -> float) -> unit
(** Register a gauge to snapshot each sampling tick. Safe to call
    after {!attach} but before the first tick fires. *)

val journal : t -> Journal.t

val sink : t -> Journal.sink

val clock : t -> Timeline.Clock.t option
(** The sampling cadence driver ([Some] iff [sample_every] was given):
    other fixed-window consumers can register on it instead of
    scheduling their own periodic timers. *)
