(** Latency provenance: reconstruct each committed op's critical path
    from the journal and decompose its commit latency into named
    components.

    The reconstruction walks backwards from the op's first [Commit]
    event. In a single-threaded simulation, whatever a node does at
    instant T happens inside the latest handler that ran there, so the
    causal predecessor of activity at a node is the most recent
    message delivery at that node; a delivery's predecessor is its
    send at the source. The walk alternates node-resident intervals
    with wire intervals, clamped to start no earlier than the submit
    instant, so the collected intervals tile [submit, commit] exactly
    — components always sum to the end-to-end commit latency, for
    every protocol, with no per-protocol knowledge.

    Components:
    - [Client_wait]: time resident at the submitting client
      (typically ~0: handlers send immediately).
    - [Request_transit]: the first hop, client to coordinator/replica.
    - [Node_wait]: time resident at replicas between deliveries and
      the next critical-path send (wait-for-quorum, service queues).
    - [Sched_wait]: the part of [Node_wait] covered by a protocol's
      ["sched_wait"] phase spans — Domino's scheduled-arrival wait.
    - [Sync_wait]: the part of [Node_wait] covered by stable storage's
      ["sync_wait"] phase spans — time the critical path spent waiting
      for an fsync barrier. Ranked below [Sched_wait] where the two
      overlap, so the components still tile the latency exactly.
    - [Quorum_transit]: intermediate replica-to-replica hops.
    - [Reply_transit]: the final hop that taught the client. *)

open Domino_sim

type component =
  | Client_wait
  | Request_transit
  | Node_wait
  | Sched_wait
  | Sync_wait
  | Quorum_transit
  | Reply_transit

val components : component list
(** All components, in a fixed presentation order. *)

val component_name : component -> string

type breakdown = {
  op : Journal.opid;
  submitted_at : Time_ns.t;
  committed_at : Time_ns.t;
  parts : (component * Time_ns.span) list;
      (** every component exactly once, in {!components} order *)
}

val latency : breakdown -> Time_ns.span
(** [committed_at - submitted_at]. *)

val total : breakdown -> Time_ns.span
(** Sum of the parts; equals {!latency} by construction. *)

val analyze : Journal.t -> breakdown list
(** One breakdown per op with both a [Submit] and a [Commit] event in
    the journal, in first-commit order. *)

val record : Metrics.t -> breakdown list -> unit
(** Fill [prov.<component>_ms] histograms (and the [prov.ops] counter)
    in the registry. *)

val to_table : breakdown list -> Domino_stats.Tablefmt.t
(** Per-component mean / p95 / share-of-total summary. *)
