(** Minimal JSON values with a deterministic printer.

    The observability layer (lib/obs) serialises metric registries to
    JSON; byte-identical output for identical inputs is a hard
    requirement (same seed => same metrics file), so rendering uses
    fixed number formats and preserves object-field order exactly as
    given — emitters sort fields themselves where order matters. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no whitespace). [Float nan] and infinities
    render as [null]; finite floats use ["%.12g"]. *)

val to_string_pretty : t -> string
(** Two-space indented rendering, for files meant to be read. *)

val escape : string -> string
(** JSON string escaping of quotes, backslashes and control
    characters. *)
