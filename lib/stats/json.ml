type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec write ~indent ~level buf t =
  let nl pad =
    match indent with
    | false -> ()
    | true ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * pad) ' ')
  in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        write ~indent ~level:(level + 1) buf item)
      items;
    nl level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        if indent then Buffer.add_char buf ' ';
        write ~indent ~level:(level + 1) buf v)
      fields;
    nl level;
    Buffer.add_char buf '}'

let render ~indent t =
  let buf = Buffer.create 256 in
  write ~indent ~level:0 buf t;
  Buffer.contents buf

let to_string t = render ~indent:false t

let to_string_pretty t = render ~indent:true t
