type 'a entry = {
  time : Time_ns.t;
  seq : int;
  value : 'a;
  mutable dead : bool;
}

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  mutable live : int;
}

type 'a handle = 'a entry
(* A handle is the entry itself; [cancel] flips its [dead] bit. Popped
   entries are also marked dead so a late [cancel] is a no-op. *)

let create () = { data = [||]; size = 0; next_seq = 0; live = 0 }

let length t = t.live

let is_empty t = t.live = 0

let heap_size t = t.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.data.(i) t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && before t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t entry =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let ndata = Array.make ncap entry in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

let push t ~time value =
  let entry = { time; seq = t.next_seq; value; dead = false } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  t.live <- t.live + 1;
  sift_up t (t.size - 1);
  entry

(* Drop every dead entry and rebuild the heap in place (Floyd
   heapify). The (time, seq) key is a total order, so pop order is
   independent of heap shape and compaction preserves determinism. *)
let compact t =
  let j = ref 0 in
  for i = 0 to t.size - 1 do
    let e = t.data.(i) in
    if not e.dead then begin
      t.data.(!j) <- e;
      incr j
    end
  done;
  t.size <- !j;
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done;
  if t.size = 0 then t.data <- [||]
  else begin
    (* Copy into a right-sized array: releases the dead entries (and
       their closures) still referenced by the old backing store. *)
    let cap = Array.length t.data in
    let ncap =
      if cap > 16 && t.size <= cap / 4 then Stdlib.max 16 (2 * t.size) else cap
    in
    let ndata = Array.make ncap t.data.(0) in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

let cancel t handle =
  if not handle.dead then begin
    handle.dead <- true;
    t.live <- t.live - 1;
    (* Lazy deletion must not let cancellation-heavy workloads grow the
       heap unboundedly: once the dead outnumber the live, sweep. *)
    if t.size >= 16 && t.size - t.live > t.size / 2 then compact t
  end

let pop_min t =
  let entry = t.data.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.data.(0) <- t.data.(t.size);
    sift_down t 0
  end;
  entry

let rec pop t =
  if t.size = 0 then None
  else begin
    let entry = pop_min t in
    if entry.dead then pop t
    else begin
      entry.dead <- true;
      t.live <- t.live - 1;
      Some (entry.time, entry.value)
    end
  end

(* Pop the minimum live entry only if it is due at or before [limit]:
   one root scan serves both the deadline check and the pop, where
   [peek_time] followed by [pop] walked the dead prefix twice. *)
let rec pop_due t ~limit =
  if t.size = 0 then None
  else begin
    let entry = t.data.(0) in
    if entry.dead then begin
      ignore (pop_min t);
      pop_due t ~limit
    end
    else if entry.time > limit then None
    else begin
      let entry = pop_min t in
      entry.dead <- true;
      t.live <- t.live - 1;
      Some (entry.time, entry.value)
    end
  end

let rec peek_time t =
  if t.size = 0 then None
  else begin
    let entry = t.data.(0) in
    if entry.dead then begin
      ignore (pop_min t);
      peek_time t
    end
    else Some entry.time
  end
