(** Array-based binary min-heap keyed by [(time, sequence)].

    The event queue of the simulator. Ties on time are broken by an
    insertion sequence number so that the execution order of
    simultaneous events is deterministic (insertion order). Cancelled
    events are removed lazily, but the heap compacts itself whenever
    dead entries outnumber live ones, so cancellation-heavy workloads
    stay bounded by the live event count. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
(** Number of live (non-cancelled) entries. *)

val is_empty : 'a t -> bool

val heap_size : 'a t -> int
(** Physical entries held (live + not-yet-reclaimed dead); exposed so
    tests can observe lazy deletion and compaction. *)

type 'a handle
(** Identifies an inserted entry, for cancellation. *)

val push : 'a t -> time:Time_ns.t -> 'a -> 'a handle
(** Insert an entry. Entries pushed at equal [time] pop in push order. *)

val cancel : 'a t -> 'a handle -> unit
(** Mark an entry dead; it will be skipped on pop. Idempotent, and a
    no-op on an entry that already popped. *)

val pop : 'a t -> (Time_ns.t * 'a) option
(** Remove and return the minimum live entry, or [None] if empty. *)

val pop_due : 'a t -> limit:Time_ns.t -> (Time_ns.t * 'a) option
(** [pop] restricted to entries with [time <= limit]; a single pass
    over the dead prefix serves both the deadline check and the pop. *)

val peek_time : 'a t -> Time_ns.t option
(** Time of the minimum live entry without removing it. *)
