type scheduler = Pheap_sched | Wheel_sched

let scheduler_name = function Pheap_sched -> "pheap" | Wheel_sched -> "wheel"

let scheduler_of_string = function
  | "pheap" -> Some Pheap_sched
  | "wheel" -> Some Wheel_sched
  | _ -> None

(* Process-wide default so the CLI's [--scheduler] flag reaches every
   engine created deep inside experiment harnesses without threading a
   parameter through each layer. *)
let default = ref Wheel_sched

let set_default_scheduler s = default := s

let default_scheduler () = !default

(* The queue holds plain thunks: fire-once events are the caller's
   closure as-is, and a periodic timer is one self-rescheduling [tick]
   closure allocated once at {!every} — no per-event kind box to
   allocate or match on the hot path. *)
type queue =
  | Q_heap of (unit -> unit) Pheap.t
  | Q_wheel of (unit -> unit) Wheel.t

type periodic = {
  interval : Time_ns.span;
  jitter : Time_ns.span;
  body : unit -> unit;
  mutable cancelled : bool;
}

type t = {
  mutable clock : Time_ns.t;
  queue : queue;
  root_rng : Rng.t;
  mutable events_run : int;
  mutable event_hook : (Time_ns.t -> unit) option;
  mutable timer_hook : (Time_ns.t -> unit) option;
}

(* Cancellation tokens point straight at the queue entry (or the
   periodic record), so the common fire-once path allocates nothing
   beyond the queue entry itself: no canceller table, no id
   indirection. *)
type event_id =
  | Ev_heap of (unit -> unit) Pheap.handle
  | Ev_wheel of (unit -> unit) Wheel.handle
  | Ev_periodic of periodic

let create ?(seed = 1L) ?scheduler () =
  let scheduler = match scheduler with Some s -> s | None -> !default in
  {
    clock = Time_ns.zero;
    queue =
      (match scheduler with
      | Pheap_sched -> Q_heap (Pheap.create ())
      | Wheel_sched -> Q_wheel (Wheel.create ~dummy:(fun () -> ())));
    root_rng = Rng.create seed;
    events_run = 0;
    event_hook = None;
    timer_hook = None;
  }

let scheduler t =
  match t.queue with Q_heap _ -> Pheap_sched | Q_wheel _ -> Wheel_sched

let now t = t.clock

let events_executed t = t.events_run

let set_event_hook t f = t.event_hook <- Some f

let clear_event_hook t = t.event_hook <- None

let set_timer_hook t f = t.timer_hook <- Some f

let clear_timer_hook t = t.timer_hook <- None

let rng t = t.root_rng

(* Fire-once insertion without a cancellation token: on the wheel this
   recycles arena entries and allocates nothing in steady state. *)
let enqueue t ~at f =
  match t.queue with
  | Q_heap q -> ignore (Pheap.push q ~time:at f)
  | Q_wheel q -> Wheel.add q ~time:at f

let schedule_at t ~at f =
  let at = Time_ns.max at t.clock in
  enqueue t ~at f

let schedule t ~delay f =
  let delay = Stdlib.max 0 delay in
  schedule_at t ~at:(Time_ns.add t.clock delay) f

let schedule_at_cancellable t ~at f =
  let at = Time_ns.max at t.clock in
  match t.queue with
  | Q_heap q -> Ev_heap (Pheap.push q ~time:at f)
  | Q_wheel q -> Ev_wheel (Wheel.push q ~time:at f)

let schedule_cancellable t ~delay f =
  let delay = Stdlib.max 0 delay in
  schedule_at_cancellable t ~at:(Time_ns.add t.clock delay) f

let every t ?(jitter = 0) ~interval body =
  if interval <= 0 then invalid_arg "Engine.every: interval must be positive";
  let p = { interval; jitter; body; cancelled = false } in
  let rec tick () =
    if not p.cancelled then begin
      (match t.timer_hook with None -> () | Some f -> f t.clock);
      p.body ();
      if not p.cancelled then begin
        let j = if p.jitter > 0 then Rng.int t.root_rng p.jitter else 0 in
        enqueue t ~at:(Time_ns.add t.clock (p.interval + j)) tick
      end
    end
  in
  let first =
    let j = if jitter > 0 then Rng.int t.root_rng jitter else 0 in
    Time_ns.add t.clock (interval + j)
  in
  enqueue t ~at:first tick;
  Ev_periodic p

let cancel t id =
  match id with
  | Ev_heap handle -> (
    match t.queue with
    | Q_heap q -> Pheap.cancel q handle
    | Q_wheel _ -> invalid_arg "Engine.cancel: id from another engine")
  | Ev_wheel handle -> (
    match t.queue with
    | Q_wheel q -> Wheel.cancel q handle
    | Q_heap _ -> invalid_arg "Engine.cancel: id from another engine")
  | Ev_periodic p -> p.cancelled <- true

let exec t time f =
  t.clock <- Time_ns.max t.clock time;
  t.events_run <- t.events_run + 1;
  (match t.event_hook with None -> () | Some hook -> hook t.clock);
  f ()

let step t =
  let next =
    match t.queue with Q_heap q -> Pheap.pop q | Q_wheel q -> Wheel.pop q
  in
  match next with
  | None -> false
  | Some (time, f) ->
    exec t time f;
    true

let run ?until t =
  (match until with
  | None -> (
    match t.queue with
    | Q_heap q ->
      let continue = ref true in
      while !continue do
        match Pheap.pop q with
        | None -> continue := false
        | Some (time, f) -> exec t time f
      done
    | Q_wheel q ->
      let continue = ref true in
      while !continue do
        match Wheel.pop q with
        | None -> continue := false
        | Some (time, f) -> exec t time f
      done)
  | Some deadline ->
    (match t.queue with
    | Q_heap q ->
      let continue = ref true in
      while !continue do
        match Pheap.pop_due q ~limit:deadline with
        | None -> continue := false
        | Some (time, f) -> exec t time f
      done
    | Q_wheel q ->
      let continue = ref true in
      while !continue do
        match Wheel.pop_due q ~limit:deadline with
        | None -> continue := false
        | Some (time, f) -> exec t time f
      done);
    if t.clock < deadline then t.clock <- deadline)

let pending t =
  match t.queue with Q_heap q -> Pheap.length q | Q_wheel q -> Wheel.length q
