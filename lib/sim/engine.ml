type kind =
  | Once of (unit -> unit)
  | Periodic of periodic

and periodic = {
  interval : Time_ns.span;
  jitter : Time_ns.span;
  body : unit -> unit;
  mutable cancelled : bool;
}

type t = {
  mutable clock : Time_ns.t;
  queue : kind Pheap.t;
  root_rng : Rng.t;
  mutable events_run : int;
  mutable event_hook : (Time_ns.t -> unit) option;
  mutable timer_hook : (Time_ns.t -> unit) option;
}

(* Cancellation tokens point straight at the queue entry (or the
   periodic record), so the common fire-once path allocates nothing
   beyond the heap entry itself: no canceller table, no id indirection. *)
type event_id =
  | Ev_once of kind Pheap.handle
  | Ev_periodic of periodic

let create ?(seed = 1L) () =
  {
    clock = Time_ns.zero;
    queue = Pheap.create ();
    root_rng = Rng.create seed;
    events_run = 0;
    event_hook = None;
    timer_hook = None;
  }

let now t = t.clock

let events_executed t = t.events_run

let set_event_hook t f = t.event_hook <- Some f

let clear_event_hook t = t.event_hook <- None

let set_timer_hook t f = t.timer_hook <- Some f

let clear_timer_hook t = t.timer_hook <- None

let rng t = t.root_rng

let schedule_at t ~at f =
  let at = Time_ns.max at t.clock in
  ignore (Pheap.push t.queue ~time:at (Once f))

let schedule t ~delay f =
  let delay = Stdlib.max 0 delay in
  schedule_at t ~at:(Time_ns.add t.clock delay) f

let schedule_at_cancellable t ~at f =
  let at = Time_ns.max at t.clock in
  Ev_once (Pheap.push t.queue ~time:at (Once f))

let schedule_cancellable t ~delay f =
  let delay = Stdlib.max 0 delay in
  schedule_at_cancellable t ~at:(Time_ns.add t.clock delay) f

let every t ?(jitter = 0) ~interval body =
  if interval <= 0 then invalid_arg "Engine.every: interval must be positive";
  let p = { interval; jitter; body; cancelled = false } in
  let first =
    let j = if jitter > 0 then Rng.int t.root_rng jitter else 0 in
    Time_ns.add t.clock (interval + j)
  in
  ignore (Pheap.push t.queue ~time:first (Periodic p));
  Ev_periodic p

let cancel t id =
  match id with
  | Ev_once handle -> Pheap.cancel t.queue handle
  | Ev_periodic p -> p.cancelled <- true

let run_event t kind =
  match kind with
  | Once f -> f ()
  | Periodic p ->
    if not p.cancelled then begin
      (match t.timer_hook with None -> () | Some f -> f t.clock);
      p.body ();
      if not p.cancelled then begin
        let j = if p.jitter > 0 then Rng.int t.root_rng p.jitter else 0 in
        let next = Time_ns.add t.clock (p.interval + j) in
        ignore (Pheap.push t.queue ~time:next (Periodic p))
      end
    end

let exec t time kind =
  t.clock <- Time_ns.max t.clock time;
  t.events_run <- t.events_run + 1;
  (match t.event_hook with None -> () | Some f -> f t.clock);
  run_event t kind

let step t =
  match Pheap.pop t.queue with
  | None -> false
  | Some (time, kind) ->
    exec t time kind;
    true

let run ?until t =
  match until with
  | None ->
    let continue = ref true in
    while !continue do
      match Pheap.pop t.queue with
      | None -> continue := false
      | Some (time, kind) -> exec t time kind
    done
  | Some deadline ->
    let continue = ref true in
    while !continue do
      match Pheap.pop_due t.queue ~limit:deadline with
      | None -> continue := false
      | Some (time, kind) -> exec t time kind
    done;
    if t.clock < deadline then t.clock <- deadline

let pending t = Pheap.length t.queue
