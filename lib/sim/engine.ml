type kind =
  | Once of (unit -> unit)
  | Periodic of periodic

and periodic = {
  interval : Time_ns.span;
  jitter : Time_ns.span;
  body : unit -> unit;
  mutable cancelled : bool;
}

type t = {
  mutable clock : Time_ns.t;
  queue : kind Pheap.t;
  root_rng : Rng.t;
  canceller : (int, unit -> unit) Hashtbl.t;
  mutable next_id : int;
  mutable events_run : int;
  mutable event_hook : (Time_ns.t -> unit) option;
}

type event_id = int

let create ?(seed = 1L) () =
  {
    clock = Time_ns.zero;
    queue = Pheap.create ();
    root_rng = Rng.create seed;
    canceller = Hashtbl.create 64;
    next_id = 0;
    events_run = 0;
    event_hook = None;
  }

let now t = t.clock

let events_executed t = t.events_run

let set_event_hook t f = t.event_hook <- Some f

let clear_event_hook t = t.event_hook <- None

let rng t = t.root_rng

let register t thunk =
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.replace t.canceller id thunk;
  id

let schedule_at t ~at f =
  let at = Time_ns.max at t.clock in
  let id_ref = ref (-1) in
  (* Drop the canceller when the event fires so the table stays small
     over long simulations. *)
  let body () =
    Hashtbl.remove t.canceller !id_ref;
    f ()
  in
  let handle = Pheap.push t.queue ~time:at (Once body) in
  let id = register t (fun () -> Pheap.cancel t.queue handle) in
  id_ref := id;
  id

let schedule t ~delay f =
  let delay = Stdlib.max 0 delay in
  schedule_at t ~at:(Time_ns.add t.clock delay) f

let every t ?(jitter = 0) ~interval body =
  if interval <= 0 then invalid_arg "Engine.every: interval must be positive";
  let p = { interval; jitter; body; cancelled = false } in
  let first =
    let j = if jitter > 0 then Rng.int t.root_rng jitter else 0 in
    Time_ns.add t.clock (interval + j)
  in
  ignore (Pheap.push t.queue ~time:first (Periodic p));
  register t (fun () -> p.cancelled <- true)

let cancel t id =
  match Hashtbl.find_opt t.canceller id with
  | None -> ()
  | Some thunk ->
    Hashtbl.remove t.canceller id;
    thunk ()

let run_event t kind =
  match kind with
  | Once f -> f ()
  | Periodic p ->
    if not p.cancelled then begin
      p.body ();
      if not p.cancelled then begin
        let j = if p.jitter > 0 then Rng.int t.root_rng p.jitter else 0 in
        let next = Time_ns.add t.clock (p.interval + j) in
        ignore (Pheap.push t.queue ~time:next (Periodic p))
      end
    end

let step t =
  match Pheap.pop t.queue with
  | None -> false
  | Some (time, kind) ->
    t.clock <- Time_ns.max t.clock time;
    t.events_run <- t.events_run + 1;
    (match t.event_hook with None -> () | Some f -> f t.clock);
    run_event t kind;
    true

let run ?until t =
  let continue () =
    match until with
    | None -> true
    | Some deadline -> begin
      match Pheap.peek_time t.queue with
      | None -> false
      | Some next -> next <= deadline
    end
  in
  while (not (Pheap.is_empty t.queue)) && continue () do
    ignore (step t)
  done;
  match until with
  | Some deadline when t.clock < deadline -> t.clock <- deadline
  | _ -> ()

let pending t = Pheap.length t.queue
