(* SplitMix64 (Steele, Lea, Flood 2014), computed on native ints.

   The state and output mix are 64-bit quantities, but OCaml's [int64]
   is boxed: the obvious implementation allocates ~9 short-lived boxes
   per draw, and the simulator draws once or twice per event. Instead
   the 64-bit words are carried as two 32-bit halves in untagged
   native ints (63-bit, so every intermediate below fits), and the
   64-bit multiplies by the two mix constants are done in 16-bit limbs.
   Bit-for-bit identical to the [Int64] reference formulation — the
   golden-journal tests pin this. *)

type t = {
  mutable hi : int;  (** state bits 32..63 *)
  mutable lo : int;  (** state bits 0..31 *)
  (* Output mix of the most recent draw, filled by [next]. Scratch
     fields rather than a returned pair so a draw allocates nothing. *)
  mutable zhi : int;
  mutable zlo : int;
}

let mask32 = 0xFFFFFFFF

(* golden_gamma = 0x9E3779B97F4A7C15 *)
let gamma_hi = 0x9E3779B9
let gamma_lo = 0x7F4A7C15

let create seed =
  {
    hi = Int64.to_int (Int64.shift_right_logical seed 32) land mask32;
    lo = Int64.to_int seed land mask32;
    zhi = 0;
    zlo = 0;
  }

(* Advance the state by golden_gamma and run the output mix
   [z ^= z >>> 30; z *= M1; z ^= z >>> 27; z *= M2; z ^= z >>> 31]
   into [zhi]/[zlo].

   A multiply-by-constant mod 2^64 splits the 32-bit halves into
   16-bit limbs so no partial product exceeds 2^49:
   with a = ahi·2^32 + a1·2^16 + a0 and likewise c3..c0 for the
   constant, the low word is a1a0 × c1c0 assembled from p00/p01/p10,
   and the high word adds p11, the low-word carries, and the mod-2^32
   cross terms. *)
let next t =
  let l = t.lo + gamma_lo in
  t.lo <- l land mask32;
  t.hi <- (t.hi + gamma_hi + (l lsr 32)) land mask32;
  let zhi = t.hi and zlo = t.lo in
  (* z ^= z >>> 30 *)
  let zlo = zlo lxor ((zlo lsr 30) lor ((zhi land 0x3FFFFFFF) lsl 2))
  and zhi = zhi lxor (zhi lsr 30) in
  (* z *= 0xBF58476D1CE4E5B9 *)
  let a0 = zlo land 0xFFFF and a1 = zlo lsr 16 in
  let p00 = a0 * 0xE5B9
  and p01 = a0 * 0x1CE4
  and p10 = a1 * 0xE5B9
  and p11 = a1 * 0x1CE4 in
  let mid = p01 + p10 in
  let losum = p00 + ((mid land 0xFFFF) lsl 16) in
  let zlo' = losum land mask32 in
  let zhi =
    ((losum lsr 32) + (mid lsr 16) + p11
    + (zlo * 0x476D) + (((zlo * 0xBF58) land 0xFFFF) lsl 16)
    + (zhi * 0xE5B9) + (((zhi * 0x1CE4) land 0xFFFF) lsl 16))
    land mask32
  in
  let zlo = zlo' in
  (* z ^= z >>> 27 *)
  let zlo = zlo lxor ((zlo lsr 27) lor ((zhi land 0x7FFFFFF) lsl 5))
  and zhi = zhi lxor (zhi lsr 27) in
  (* z *= 0x94D049BB133111EB *)
  let a0 = zlo land 0xFFFF and a1 = zlo lsr 16 in
  let p00 = a0 * 0x11EB
  and p01 = a0 * 0x1331
  and p10 = a1 * 0x11EB
  and p11 = a1 * 0x1331 in
  let mid = p01 + p10 in
  let losum = p00 + ((mid land 0xFFFF) lsl 16) in
  let zlo' = losum land mask32 in
  let zhi =
    ((losum lsr 32) + (mid lsr 16) + p11
    + (zlo * 0x49BB) + (((zlo * 0x94D0) land 0xFFFF) lsl 16)
    + (zhi * 0x11EB) + (((zhi * 0x1331) land 0xFFFF) lsl 16))
    land mask32
  in
  let zlo = zlo' in
  (* z ^= z >>> 31 *)
  t.zlo <- zlo lxor ((zlo lsr 31) lor ((zhi land 0x7FFFFFFF) lsl 1));
  t.zhi <- zhi lxor (zhi lsr 31)

let int64 t =
  next t;
  Int64.logor (Int64.shift_left (Int64.of_int t.zhi) 32) (Int64.of_int t.zlo)

let split t = create (int64 t)

let copy t = { hi = t.hi; lo = t.lo; zhi = 0; zlo = 0 }

let float t =
  (* 53 random bits into the mantissa: bits 11..63 of the draw. *)
  next t;
  float_of_int ((t.zhi lsl 21) lor (t.zlo lsr 11)) *. 0x1.0p-53

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to 62 bits so the value stays non-negative as an OCaml int;
     modulo bias is negligible for bounds far below 2^62. *)
  next t;
  let v = ((t.zhi land 0x3FFFFFFF) lsl 32) lor t.zlo in
  v mod bound

let bool t =
  next t;
  t.zlo land 1 = 1

let uniform t lo hi = lo +. ((hi -. lo) *. float t)

let normal t ~mean ~std =
  let rec nonzero () =
    let u = float t in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t in
  let r = sqrt (-2. *. log u1) in
  mean +. (std *. r *. cos (2. *. Float.pi *. u2))

let exponential t ~mean =
  let rec nonzero () =
    let u = float t in
    if u > 0. then u else nonzero ()
  in
  -.mean *. log (nonzero ())

let lognormal t ~mu ~sigma = exp (normal t ~mean:mu ~std:sigma)

let pareto t ~scale ~shape =
  let rec nonzero () =
    let u = float t in
    if u > 0. then u else nonzero ()
  in
  scale /. (nonzero () ** (1. /. shape))
