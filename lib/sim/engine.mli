(** Discrete-event simulation engine: a virtual clock and event loop.

    Everything in the reproduction — WAN message delivery, protocol
    timers, probing intervals, workload inter-arrival times — runs as
    callbacks scheduled on one of these engines, so an entire
    multi-datacenter experiment is a deterministic single-threaded
    computation reproducible from its RNG seed.

    Cancellation is opt-in: {!schedule} and {!schedule_at} are the hot
    path and allocate only the heap entry; the [_cancellable] variants
    return an {!event_id} for {!cancel}. *)

type t

type event_id
(** Token for cancelling a scheduled event. *)

type scheduler = Pheap_sched | Wheel_sched
(** Event-queue implementation: the binary {!Pheap} or the hierarchical
    timing {!Wheel}. Both pop in identical [(time, seq)] order, so runs
    are byte-identical across the two — the wheel is simply faster on
    the short-horizon events that dominate. *)

val scheduler_name : scheduler -> string
(** ["pheap"] / ["wheel"]. *)

val scheduler_of_string : string -> scheduler option
(** Inverse of {!scheduler_name}; [None] on anything else. *)

val set_default_scheduler : scheduler -> unit
(** Set the process-wide default used by {!create} when [?scheduler] is
    omitted (initially [Wheel_sched]). The CLI's [--scheduler] flag
    calls this so every engine inside an experiment harness follows. *)

val default_scheduler : unit -> scheduler

val create : ?seed:int64 -> ?scheduler:scheduler -> unit -> t
(** A fresh engine with its clock at {!Time_ns.zero}. [seed] (default
    [1L]) seeds the root RNG from which subsystems {!Rng.split} their
    own streams. [scheduler] defaults to {!default_scheduler}. *)

val scheduler : t -> scheduler
(** The queue implementation this engine runs on. *)

val now : t -> Time_ns.t
(** Current virtual time. *)

val rng : t -> Rng.t
(** The engine's root RNG. Subsystems should [Rng.split] it once at
    construction rather than sharing it. *)

val schedule : t -> delay:Time_ns.span -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t + delay]. A negative
    [delay] is clamped to zero. Events scheduled for the same instant
    run in scheduling order. Fire-once and not cancellable — use
    {!schedule_cancellable} when a cancellation token is needed. *)

val schedule_at : t -> at:Time_ns.t -> (unit -> unit) -> unit
(** As {!schedule} with an absolute deadline; a deadline in the past is
    clamped to now. *)

val schedule_cancellable :
  t -> delay:Time_ns.span -> (unit -> unit) -> event_id
(** As {!schedule}, returning an id accepted by {!cancel}. *)

val schedule_at_cancellable :
  t -> at:Time_ns.t -> (unit -> unit) -> event_id
(** As {!schedule_at}, returning an id accepted by {!cancel}. *)

val every :
  t -> ?jitter:Time_ns.span -> interval:Time_ns.span -> (unit -> unit) ->
  event_id
(** [every t ~interval f] runs [f] now + interval, then repeatedly each
    [interval], until cancelled. With [~jitter:j], each period is
    lengthened by a uniform draw in [\[0, j)], desynchronising periodic
    processes. The returned id cancels the whole series. *)

val cancel : t -> event_id -> unit
(** Cancel a pending event (idempotent; no effect after it ran). *)

val run : ?until:Time_ns.t -> t -> unit
(** Process events in time order. Stops when the queue is empty, or
    when virtual time would exceed [until] (the clock is then advanced
    to exactly [until]). *)

val step : t -> bool
(** Process a single event; [false] if the queue was empty. *)

val pending : t -> int
(** Number of scheduled (uncancelled) events. *)

val events_executed : t -> int
(** Events processed since creation — the observability layer's
    event-loop throughput figure (events / wall-second). *)

val set_event_hook : t -> (Time_ns.t -> unit) -> unit
(** Observability trace hook, called with the virtual instant before
    each event executes (replaces any previous hook). Costs one
    [option] match per event when unset. *)

val clear_event_hook : t -> unit

val set_timer_hook : t -> (Time_ns.t -> unit) -> unit
(** Flight-recorder hook, called with the virtual instant each time a
    {!every} period fires (replaces any previous hook). Deliberately
    not on the fire-once path: {!schedule}/{!schedule_at} events are
    the hot path and stay hook-free. Costs one [option] match per
    periodic fire when unset. *)

val clear_timer_hook : t -> unit
