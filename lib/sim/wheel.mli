(** Hierarchical timing wheel keyed by [(time, sequence)].

    A drop-in alternative to {!Pheap} for the simulator's event queue:
    O(1) amortized insert and extract for the short-horizon events that
    dominate a run (link deliveries, periodic timers), against the
    heap's O(log n). Eleven levels of 32 slots cover the entire
    [Time_ns.t] range (a level-0 slot is 1.024 us, each level 32x
    coarser), so arbitrarily long timers need no overflow structure.

    The pop order is {e exactly} {!Pheap}'s: ascending [(time, seq)]
    where [seq] is the global insertion sequence — equal-time entries
    pop in insertion order. Imminent entries are promoted into a small
    binary heap that enforces this total order; wheel slots only ever
    hold entries whose slot lies strictly beyond it.

    Fire-once entries inserted with {!add} return no handle and are
    recycled through an internal free list once popped, so steady-state
    insertion allocates nothing. {!push} returns a {!handle} for
    {!cancel} and is never recycled (a stale handle must not alias a
    reused entry). Cancellation is lazy, as in [Pheap]: cancelled
    entries are skipped at extraction, and their stored value is
    released eagerly. *)

type 'a t

type 'a handle
(** Identifies a {!push}ed entry, for cancellation. *)

val create : dummy:'a -> 'a t
(** [create ~dummy] makes an empty wheel. [dummy] is a throwaway value
    of the element type used to blank recycled and vacated cells (the
    preallocated arenas hold no options, so a placeholder is needed). *)

val length : 'a t -> int
(** Number of live (non-cancelled) entries. *)

val is_empty : 'a t -> bool

val add : 'a t -> time:Time_ns.t -> 'a -> unit
(** Insert a fire-once entry; it cannot be cancelled, and its storage
    is recycled after it pops. Entries at equal [time] pop in insertion
    order (shared with {!push}). [time] must be >= 0. *)

val push : 'a t -> time:Time_ns.t -> 'a -> 'a handle
(** As {!add}, returning a handle accepted by {!cancel}. *)

val cancel : 'a t -> 'a handle -> unit
(** Mark an entry dead; it will be skipped at extraction. Idempotent,
    and a no-op on an entry that already popped. *)

val pop : 'a t -> (Time_ns.t * 'a) option
(** Remove and return the minimum live entry, or [None] if empty. *)

val pop_due : 'a t -> limit:Time_ns.t -> (Time_ns.t * 'a) option
(** [pop] restricted to entries with [time <= limit]. A peek path: when
    the next live entry is past [limit] it is left in place, and if
    every remaining entry provably lies beyond [limit] the cursor does
    not move at all. *)

val peek_time : 'a t -> Time_ns.t option
(** Time of the minimum live entry without removing it. *)
