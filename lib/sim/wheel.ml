(* Hierarchical timing wheel (Varghese & Lauck), specialised for the
   simulator's event queue.

   Layout: 11 levels of 32 slots. A level-0 slot spans 2^10 ns
   (1.024 us); each higher level is 32x coarser, so level l spans
   2^(10+5l) ns per slot and the top level covers the whole of
   [Time_ns.t] (10 + 5*11 = 65 bits) — no separate overflow structure
   is needed.

   Ordering contract (must match [Pheap] exactly): entries pop in
   (time, seq) order, where [seq] is the global insertion sequence —
   equal-time entries pop in insertion order. Wheel slots alone cannot
   provide that (a slot holds a 1 us band, unsorted), so entries whose
   level-0 tick has been reached by the cursor move into [near], a
   small binary min-heap keyed by (time, seq). [pop] only ever takes
   from [near]; every wheel entry has a strictly later tick than every
   near entry, so the near minimum is the global minimum.

   The cursor [cur] is the level-0 tick up to which slots have been
   drained. Advancing it is a bitmap scan: per-level 32-bit occupancy
   words let the refill step jump straight to the next nonempty slot
   (ctz) instead of stepping tick by tick. Climbing happens when the
   current level-1 slot's lap of level-0 ticks is exhausted: bits still
   set below level l are "spill" due within the next level-l slot, so
   the cursor steps exactly one slot at level l and the newly entered
   slot at every affected level re-scatters its entries downward.

   Arena lifecycle: fire-once entries inserted with [add] return no
   handle, so after they pop nothing can reference them — they go to a
   free list and are recycled by later [add]s, making the fire-once
   path allocation-free in steady state. [push] entries return their
   handle for [cancel] and are never recycled (a stale handle must not
   alias a reused entry). Cancellation is lazy, as in [Pheap]: the
   entry is marked and dropped when its slot drains or it reaches the
   top of [near]; [cancel] clears the stored value immediately so the
   closure is not retained for the remaining horizon. *)

let g0_bits = 10
let level_bits = 5
let slots_per_level = 32
let slot_mask = slots_per_level - 1
let levels = 11

let st_live = 0
let st_cancelled = 1
let st_spent = 2

type 'a entry = {
  mutable time : Time_ns.t;
  mutable seq : int;
  mutable value : 'a;
  mutable state : int;
  recyclable : bool;
}

type 'a handle = 'a entry

type 'a t = {
  dummy : 'a;
  dummy_entry : 'a entry;
  mutable cur : int;  (** level-0 tick: slots at ticks <= cur are drained *)
  bits : int array;  (** per-level slot-occupancy bitmaps *)
  mutable occ : int;  (** bitmap of levels with a nonzero [bits] word *)
  slots : 'a entry array array;  (** levels * 32 growable vectors *)
  slot_len : int array;
  mutable near : 'a entry array;  (** binary min-heap on (time, seq) *)
  mutable near_size : int;
  mutable free : 'a entry array;  (** recycled fire-once entries *)
  mutable free_len : int;
  mutable next_seq : int;
  mutable live : int;
}

let create ~dummy =
  let dummy_entry =
    { time = 0; seq = -1; value = dummy; state = st_spent; recyclable = false }
  in
  {
    dummy;
    dummy_entry;
    cur = 0;
    bits = Array.make levels 0;
    occ = 0;
    slots = Array.make (levels * slots_per_level) [||];
    slot_len = Array.make (levels * slots_per_level) 0;
    near = [||];
    near_size = 0;
    free = [||];
    free_len = 0;
    next_seq = 0;
    live = 0;
  }

let length t = t.live

let is_empty t = t.live = 0

(* ---- near heap ---- *)

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let near_push t e =
  let n = t.near_size in
  if n = Array.length t.near then begin
    let ncap = if n = 0 then 16 else 2 * n in
    let na = Array.make ncap e in
    Array.blit t.near 0 na 0 n;
    t.near <- na
  end;
  let a = t.near in
  a.(n) <- e;
  t.near_size <- n + 1;
  let i = ref n in
  let moving = ref true in
  while !moving && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before a.(!i) a.(parent) then begin
      let tmp = a.(!i) in
      a.(!i) <- a.(parent);
      a.(parent) <- tmp;
      i := parent
    end
    else moving := false
  done

let near_pop_min t =
  let a = t.near in
  let e = a.(0) in
  let n = t.near_size - 1 in
  t.near_size <- n;
  if n > 0 then begin
    a.(0) <- a.(n);
    let i = ref 0 in
    let moving = ref true in
    while !moving do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < n && before a.(l) a.(!smallest) then smallest := l;
      if r < n && before a.(r) a.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = a.(!i) in
        a.(!i) <- a.(!smallest);
        a.(!smallest) <- tmp;
        i := !smallest
      end
      else moving := false
    done
  end;
  a.(n) <- t.dummy_entry;
  e

(* ---- slot vectors ---- *)

let slot_push t si e =
  let a = t.slots.(si) in
  let n = t.slot_len.(si) in
  if n = Array.length a then begin
    let ncap = if n = 0 then 4 else 2 * n in
    let na = Array.make ncap e in
    Array.blit a 0 na 0 n;
    t.slots.(si) <- na
  end
  else a.(n) <- e;
  t.slot_len.(si) <- n + 1

(* ---- placement ---- *)

(* Level of a tick delta >= 1: the l with delta in [32^l, 32^(l+1)). *)
let level_of delta =
  let l = ref 0 and d = ref delta in
  while !d >= slots_per_level do
    incr l;
    d := !d lsr level_bits
  done;
  !l

let place t e =
  let tick = e.time lsr g0_bits in
  if tick <= t.cur then near_push t e
  else begin
    let lvl = level_of (tick - t.cur) in
    let slot = (tick lsr (level_bits * lvl)) land slot_mask in
    slot_push t ((lvl lsl level_bits) lor slot) e;
    t.bits.(lvl) <- t.bits.(lvl) lor (1 lsl slot);
    t.occ <- t.occ lor (1 lsl lvl)
  end

(* ---- insertion ---- *)

let free_push t e =
  let n = t.free_len in
  if n = Array.length t.free then begin
    let ncap = if n = 0 then 16 else 2 * n in
    let na = Array.make ncap t.dummy_entry in
    Array.blit t.free 0 na 0 n;
    t.free <- na
  end;
  t.free.(n) <- e;
  t.free_len <- n + 1

let add t ~time value =
  if time < 0 then invalid_arg "Wheel.add: negative time";
  let e =
    if t.free_len > 0 then begin
      let n = t.free_len - 1 in
      t.free_len <- n;
      let e = t.free.(n) in
      t.free.(n) <- t.dummy_entry;
      e.time <- time;
      e.seq <- t.next_seq;
      e.value <- value;
      e.state <- st_live;
      e
    end
    else { time; seq = t.next_seq; value; state = st_live; recyclable = true }
  in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  place t e

let push t ~time value =
  if time < 0 then invalid_arg "Wheel.push: negative time";
  let e = { time; seq = t.next_seq; value; state = st_live; recyclable = false } in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  place t e;
  e

let cancel t e =
  if e.state = st_live then begin
    e.state <- st_cancelled;
    e.value <- t.dummy;
    t.live <- t.live - 1
  end

(* ---- cursor advance ---- *)

(* Count trailing zeros of a nonzero value < 2^32 (de Bruijn). *)
let ctz_table =
  [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8; 31; 27; 13; 23;
     21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

let ctz x = ctz_table.(((x land -x) * 0x077CB531 land 0xFFFFFFFF) lsr 27)

(* Move all live entries of slot [slot] at level [lvl] back through
   [place] under the (just-advanced) cursor. At level 0 every entry has
   tick = cur, so place puts them straight into [near]; at higher
   levels they fan out to lower levels. The occupancy bit is cleared
   before re-placing because an entry may legitimately return to this
   very slot (a full-lap-away tick). *)
let scatter t lvl slot =
  let si = (lvl lsl level_bits) lor slot in
  let a = t.slots.(si) in
  let n = t.slot_len.(si) in
  t.slot_len.(si) <- 0;
  t.bits.(lvl) <- t.bits.(lvl) land lnot (1 lsl slot);
  if t.bits.(lvl) = 0 then t.occ <- t.occ land lnot (1 lsl lvl);
  for i = 0 to n - 1 do
    let e = a.(i) in
    a.(i) <- t.dummy_entry;
    if e.state = st_live then place t e
  done

(* Jump the level-[lvl] cursor to [new_c], then scatter the newly
   entered slot at every level whose cursor digit changed, top-down —
   a higher slot may fan entries into the lower slot about to be
   scattered. *)
let advance t lvl new_c =
  let old = t.cur in
  let nc0 = new_c lsl (level_bits * lvl) in
  t.cur <- nc0;
  for m = levels - 1 downto 0 do
    let sh = level_bits * m in
    let ncm = nc0 lsr sh in
    if ncm <> old lsr sh then begin
      let s = ncm land slot_mask in
      if t.bits.(m) land (1 lsl s) <> 0 then scatter t m s
    end
  done

(* One step of cursor motion toward the next nonempty slot.
   Precondition: occ <> 0. May need several calls before [near] turns
   nonempty (a drained slot can be all-cancelled, or entries scatter to
   lower levels first); each call strictly advances [cur]. *)
let refill t =
  let off0 = t.cur land slot_mask in
  let ahead0 = (t.bits.(0) lsr off0) lsr 1 in
  if ahead0 <> 0 then begin
    let p = off0 + 1 + ctz ahead0 in
    t.cur <- t.cur + (p - off0);
    scatter t 0 p
  end
  else begin
    let rec climb lvl =
      if lvl >= levels then
        (* occ <> 0 guarantees some level below already matched. *)
        assert false
      else begin
        let c = t.cur lsr (level_bits * lvl) in
        if t.occ land ((1 lsl lvl) - 1) <> 0 then
          (* Spill below this level: everything still set at lower
             levels is due within the next level-[lvl] slot. *)
          advance t lvl (c + 1)
        else begin
          let ahead = (t.bits.(lvl) lsr (c land slot_mask)) lsr 1 in
          if ahead <> 0 then advance t lvl (c + 1 + ctz ahead)
          else climb (lvl + 1)
        end
      end
    in
    climb 1
  end

(* ---- extraction ---- *)

let take t e =
  e.state <- st_spent;
  t.live <- t.live - 1;
  let v = e.value in
  e.value <- t.dummy;
  if e.recyclable then free_push t e;
  Some (e.time, v)

let rec pop t =
  if t.near_size > 0 then begin
    let e = near_pop_min t in
    if e.state <> st_live then pop t else take t e
  end
  else if t.occ = 0 then None
  else begin
    refill t;
    pop t
  end

let rec pop_due t ~limit =
  if t.near_size > 0 then begin
    let e = t.near.(0) in
    if e.state <> st_live then begin
      ignore (near_pop_min t);
      pop_due t ~limit
    end
    else if e.time > limit then None
    else take t (near_pop_min t)
  end
  else if t.occ = 0 then None
  else if t.cur >= limit lsr g0_bits then
    (* Every wheel entry sits at a tick past the cursor, hence at a
       time >= (cur+1) * 2^10 > limit: nothing due — and the cursor is
       left untouched. *)
    None
  else begin
    refill t;
    pop_due t ~limit
  end

let rec peek_time t =
  if t.near_size > 0 then begin
    let e = t.near.(0) in
    if e.state <> st_live then begin
      ignore (near_pop_min t);
      peek_time t
    end
    else Some e.time
  end
  else if t.occ = 0 then None
  else begin
    refill t;
    peek_time t
  end
