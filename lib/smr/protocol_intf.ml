open Domino_sim
open Domino_net
open Domino_obs

type params = {
  additional_delay : Time_ns.span;
  percentile : float;
  every_replica_learns : bool;
  adaptive : bool;
  force_dfp : bool;
  retry_timeout : Time_ns.span;
  retry_max_attempts : int;
  retry_failover_after : int;
}

let default_params =
  {
    additional_delay = 0;
    percentile = 95.;
    every_replica_learns = false;
    adaptive = false;
    force_dfp = false;
    retry_timeout = 0;
    retry_max_attempts = 6;
    retry_failover_after = 1;
  }

module Cluster = struct
  type env = {
    engine : Engine.t;
    topo : Topology.t;
    metrics : Metrics.t;
    trace : Trace.sink;
    journal : Journal.sink;
  }
end

module Group = struct
  type env = {
    cluster : Cluster.env;
    prefix : string;
    make_net : 'msg. unit -> 'msg Fifo_net.t;
    replicas : Nodeid.t array;
    leader : Nodeid.t;
    coordinator_of : Nodeid.t -> Nodeid.t;
    observer : Observer.t;
    stores : Domino_store.Store.t array;
    params : params;
  }

  let metrics g = g.cluster.Cluster.metrics
  let trace g = g.cluster.Cluster.trace
  let journal g = g.cluster.Cluster.journal
  let qualify g name = g.prefix ^ name
end

type env = Group.env

(* Planned-operations interface: graceful, non-crash coordination
   handoffs driven by the reconfiguration / rolling-patch
   orchestrators. [Transfer] moves coordination duties away from
   [from_] (the Multi-Paxos leader role, the Mencius coordinator lease
   for clients it fronts, Domino's DM steering) toward [to_];
   [Restore] undoes any steering installed against [node] once it is
   back. Leaderless protocols refuse (return [false]). *)
type control =
  | Transfer of { from_ : Nodeid.t; to_ : Nodeid.t }
  | Restore of { node : Nodeid.t }

module type S = sig
  type t

  val name : string
  val create : Group.env -> t
  val submit : t -> Op.t -> unit
  val committed_count : t -> int
  val fast_slow_counts : t -> (int * int) option
  val extra_stats : t -> (string * int) list
  val gauges : t -> (string * (unit -> float)) list

  val control : t -> control -> k:(unit -> unit) -> bool
  (** Ask the protocol to perform a planned operation. Returns [false]
      if unsupported (the continuation is dropped); [true] if accepted,
      in which case [k] fires exactly once when the operation completes
      — possibly synchronously, or after a drain for handoffs that wait
      out in-flight work. *)
end

type protocol = (module S)

let registry : (string, protocol) Hashtbl.t = Hashtbl.create 8

(* The registry is process-global while simulation runs may execute on
   several domains at once (lib/par), and resolution re-registers
   idempotently — so every access takes the lock. Resolution happens
   once per run; the cost is noise. *)
let registry_lock = Mutex.create ()

let locked f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let register ((module P : S) as p) =
  locked (fun () -> Hashtbl.replace registry P.name p);
  p

let find name = locked (fun () -> Hashtbl.find_opt registry name)

let names () =
  locked (fun () ->
      List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) registry []))

let instrument (type msg) (env : Group.env) ~name
    ~(classify : msg -> Msg_class.t) ~(op_of : msg -> Op.t option)
    (net : msg Fifo_net.t) =
  (* Metric names carry the group prefix, so two groups running the
     same protocol on one cluster count into distinct instruments
     ([g0.domino.msg.*] vs [g1.domino.msg.*]); a single-group run has
     the empty prefix and keeps the historical [domino.msg.*] names. *)
  let name = Group.qualify env name in
  let metrics = Group.metrics env in
  let counter suffix cls =
    Metrics.counter metrics
      (Printf.sprintf "%s.msg.%s.%s" name (Msg_class.to_string cls) suffix)
  in
  (* Pre-register one counter per (class, direction) so the hot path is
     a constant-time variant dispatch, and so every class shows up in
     the emitted JSON even at count 0. *)
  let pick suffix =
    let get = counter suffix in
    let p = get Msg_class.Proposal
    and r = get Msg_class.Replication
    and a = get Msg_class.Ack
    and c = get Msg_class.Commit_notice
    and k = get Msg_class.Control in
    fun (cls : Msg_class.t) ->
      match cls with
      | Proposal -> p
      | Replication -> r
      | Ack -> a
      | Commit_notice -> c
      | Control -> k
  in
  let sent = pick "sent"
  and delivered = pick "delivered"
  and dropped = pick "dropped" in
  let trace = Group.trace env in
  let journal = Group.journal env in
  (* The journal sink is fixed at construction (Null vs Rec), so the
     enabled test hoists out of the per-message hooks entirely: a
     sinkless run pays one counter bump per event and nothing else. The
     trace check stays per-event — its focus op can be set after
     wiring. *)
  let journal_on = Journal.enabled journal in
  Fifo_net.set_message_hooks net
    ~sent:(fun ~seq ~src ~dst msg ~at ->
      let cls = classify msg in
      Metrics.inc (sent cls);
      if journal_on then
        Journal.emit journal
          (Journal.Msg_sent
             { seq; src; dst; cls = Msg_class.to_string cls;
               op = Option.map Op.id (op_of msg); at });
      if Trace.enabled trace then begin
        match op_of msg with
        | Some op ->
          Trace.emit trace
            (Trace.Sent
               { op = Op.id op; seq; src; dst;
                 cls = Msg_class.to_string cls; at })
        | None -> ()
      end)
    ~delivered:(fun ~seq ~src ~dst msg ~sent_at ~at ->
      let cls = classify msg in
      Metrics.inc (delivered cls);
      if journal_on then
        Journal.emit journal
          (Journal.Msg_delivered
             { seq; src; dst; cls = Msg_class.to_string cls;
               op = Option.map Op.id (op_of msg); sent_at; at });
      if Trace.enabled trace then begin
        match op_of msg with
        | Some op ->
          Trace.emit trace
            (Trace.Delivered
               { op = Op.id op; seq; src; dst;
                 cls = Msg_class.to_string cls; sent_at; at })
        | None -> ()
      end)
    ~dropped:(fun ~seq ~src ~dst msg ~reason ~at ->
      let cls = classify msg in
      Metrics.inc (dropped cls);
      if journal_on then
        Journal.emit journal
          (Journal.Msg_dropped
             { seq; src; dst; cls = Msg_class.to_string cls;
               reason = Fifo_net.drop_reason_string reason; at }))
