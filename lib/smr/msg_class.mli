(** Coarse message classification for CPU cost modelling.

    The throughput study (paper Figure 13) charges each received
    message a service time depending on what the handler does:
    - [Proposal]: a client request hitting the node that orders it —
      the expensive step (dedup, ordering, bookkeeping);
    - [Replication]: appending a replicated entry;
    - [Ack]: counting a vote/acknowledgement;
    - [Commit_notice]: recording a commit decision;
    - [Control]: probes, heartbeats, watermarks, client replies. *)

type t = Proposal | Replication | Ack | Commit_notice | Control

val all : t list
(** Every class, in declaration order. *)

val to_string : t -> string
(** Stable lowercase label, used in metric and trace names. *)

val pp : Format.formatter -> t -> unit
