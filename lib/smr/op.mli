open Domino_net

(** State-machine operations.

    The evaluation workload (§7.1) is a replicated key-value store
    receiving write operations of 16 bytes (8 B key + 8 B value). An
    operation is uniquely identified by (client, seq); two operations
    interfere when they touch the same key (the EPaxos notion the paper
    reuses). *)

type t = {
  client : Nodeid.t;  (** submitting client's node id *)
  seq : int;  (** per-client sequence number *)
  key : int;
  value : int64;
}

type id = Nodeid.t * int

val make : client:Nodeid.t -> seq:int -> key:int -> value:int64 -> t

val id : t -> id

val conflicts : t -> t -> bool
(** Same key, different operation. *)

val compare_id : id -> id -> int

val pp : Format.formatter -> t -> unit

val to_wire : t -> string
(** Single-token encoding ([client:seq:key:value]) for stable-storage
    log records; inverse of {!of_wire}. *)

val of_wire : string -> t option

module Idmap : Map.S with type key = id
module Idset : Set.S with type elt = id
