type t = Proposal | Replication | Ack | Commit_notice | Control

let all = [ Proposal; Replication; Ack; Commit_notice; Control ]

let to_string = function
  | Proposal -> "proposal"
  | Replication -> "replication"
  | Ack -> "ack"
  | Commit_notice -> "commit"
  | Control -> "control"

let pp fmt t = Format.pp_print_string fmt (to_string t)
