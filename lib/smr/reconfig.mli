open Domino_sim
open Domino_obs

(** Planned membership reconfiguration and leader transfer for one
    consensus group.

    The membership-epoch state machine is stop-the-world: new submits
    routed to the group are frozen, in-flight ops drain to commit, the
    new configuration is fsynced onto every member of the {e new}
    membership ({!Domino_store.Store.append_sync}), and only then is
    the epoch bump journaled ([reconfig.epoch]) and the change applied
    — a removed replica is taken off the network, an added one is
    readmitted — before the parked submits are released. No op can
    therefore commit across an epoch boundary out of order, which is
    the invariant the chaos checker's reconfig rules verify. If the
    drain deadline expires first, the change aborts: submits are
    released, the epoch is untouched, and [reconfig.abort] is
    journaled.

    {!transfer} is the orthogonal graceful operation: hand coordination
    duties from one replica to another without stopping the world,
    through the protocol's {!Protocol_intf.S.control} hook
    (Multi-Paxos drains and flips its leader, Mencius re-steers the
    handed-off coordinator's clients, Domino steers every client's DM
    routing; leaderless protocols accept vacuously).

    All stages land in the journal as {!Domino_obs.Journal.Reconfig}
    events, with details leading with [node=<n>] so the dip analyzer
    attributes each transfer and roll step to the replica it touched.

    The orchestrator is callback-driven ({!hooks}): it owns the epoch
    counter, the membership bitmap, and the tracked coordination
    holder, while the shard fabric supplies the router freeze, the
    network crash/readmit, and the protocol control dispatch. *)

type change =
  | Add of int  (** readmit a (previously removed) replica index *)
  | Remove of int
  | Replace of { node : int; with_ : int }

type outcome = {
  change : change;
  epoch : int;  (** the epoch after the change; unchanged on abort *)
  queued : int;  (** submits parked during the freeze *)
  started_at : Time_ns.t;
  finished_at : Time_ns.t;
  aborted : bool;
}

type hooks = {
  control : Protocol_intf.control -> k:(unit -> unit) -> bool;
  freeze : unit -> unit;
  unfreeze : unit -> int;
  inflight : unit -> int;
  crash_node : int -> unit;
  recover_node : int -> unit;
}

type t

val create :
  Engine.t ->
  journal:Journal.sink ->
  group:int ->
  n:int ->
  leader:int ->
  stores:Domino_store.Store.t array ->
  hooks:hooks ->
  ?poll:Time_ns.span ->
  ?drain_deadline:Time_ns.span ->
  ?mutant:bool ->
  unit ->
  t
(** [n] is the group's original replica count; quorum arithmetic stays
    over [n], so removals narrow the fault budget instead of shrinking
    quorums (a removal that would leave fewer than a majority of the
    original membership is refused). [leader] seeds the tracked
    coordination holder. [mutant] is the stale-config build: removed
    replicas are never taken off the network — the bug the checker's
    removed-node rule exists to catch. *)

val transfer : t -> ?from_:int -> to_:int -> k:(unit -> unit) -> unit -> bool
(** Graceful handoff of coordination duties to [to_]; [from_] defaults
    to the tracked holder (pass it explicitly to steer clients away
    from a non-leader replica about to be serviced). [false] only when
    an endpoint is not a member. [k] fires once the protocol reports
    the handoff complete — immediately for steering-only protocols and
    vacuous transfers, after the drain for Multi-Paxos. Journals the
    [reconfig.transfer] / [reconfig.transfer_done] pair. *)

val request : t -> change -> k:(unit -> unit) -> bool
(** Start a membership change; [false] if one is already active or the
    change is invalid against the current membership. [k] fires once,
    on done or abort. Removing the current holder transfers duties
    away first. *)

val restore : t -> node:int -> unit
(** Clear any protocol steering against [node] (vacuous where none). *)

val epoch : t -> int

val holder : t -> int
(** The tracked coordination holder (initially [leader], updated by
    successful transfers). *)

val active : t -> bool

val is_member : t -> int -> bool

val members : t -> int list
(** Current member replica indices, ascending. *)

val outcomes : t -> outcome list
(** Completed (or aborted) membership changes, oldest first. *)
