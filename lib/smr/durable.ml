open Domino_sim
open Domino_net
module Store = Domino_store.Store

let default_stores net ~replicas =
  Array.map
    (fun r ->
      Store.create (Fifo_net.engine net) ~node:r ~params:Store.default_params
        ~journal:Domino_obs.Journal.null)
    replicas

let index_of replicas node =
  let idx = ref (-1) in
  Array.iteri (fun i r -> if Nodeid.equal r node then idx := i) replicas;
  !idx

let install net ~replicas ~stores ~wipe ~replay =
  Array.iteri
    (fun i r ->
      Fifo_net.set_wipe_hook net r
        ~wipe:(fun () ->
          wipe i;
          Store.wipe stores.(i);
          Store.recovery_span stores.(i))
        ~replay:(fun () ->
          let snap, records = Store.recover stores.(i) in
          replay i snap records))
    replicas

let auto_snapshot net ~replicas ~stores ~interval ~encode =
  Array.iteri
    (fun i r ->
      ignore
        (Engine.every (Fifo_net.engine net) ~interval (fun () ->
             if Fifo_net.is_up net r then
               let st = stores.(i) in
               Store.snapshot st (encode i) ~upto:(Store.appended st))))
    replicas
