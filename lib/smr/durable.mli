(** Shared wiring between a protocol and its replicas' stable stores.

    Every protocol persists differently, but they all need the same
    scaffolding: a store per replica (the harness provides them via
    [Protocol_intf.env.stores]; direct constructors fall back to
    {!default_stores}), wipe-restart hooks on the network, and —
    where the protocol's recovery state is snapshottable — a periodic
    snapshot timer. *)

open Domino_sim
open Domino_net

val default_stores :
  'msg Fifo_net.t -> replicas:Nodeid.t array -> Domino_store.Store.t array
(** Fresh stores with default parameters and no journal, for direct
    protocol constructors outside the harness. *)

val index_of : Nodeid.t array -> Nodeid.t -> int
(** Index of a node in the replica array, [-1] if absent. *)

val install :
  'msg Fifo_net.t ->
  replicas:Nodeid.t array ->
  stores:Domino_store.Store.t array ->
  wipe:(int -> unit) ->
  replay:(int -> string option -> string list -> unit) ->
  unit
(** Install {!Fifo_net.set_wipe_hook} for every replica: at the wipe
    instant [wipe i] drops replica [i]'s volatile state, then the store
    is wiped and its modeled recovery span returned; at the restart
    instant [replay i snapshot records] rebuilds from what survived. *)

val auto_snapshot :
  'msg Fifo_net.t ->
  replicas:Nodeid.t array ->
  stores:Domino_store.Store.t array ->
  interval:Time_ns.span ->
  encode:(int -> string) ->
  unit
(** Periodically snapshot each replica's recovery state ([encode i]) at
    the current log frontier, truncating covered records. Skipped while
    the node is down. *)
