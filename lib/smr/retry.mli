(** Harness-side client retry: request timeout with bounded exponential
    backoff, protocol-agnostic.

    A [t] sits between the workload and a protocol's submit function:
    {!submit} forwards the op and arms a timer; if no commit is
    observed within the timeout, the op is re-submitted and the timeout
    doubles (more generally, multiplies by [policy.factor]), up to
    [policy.max_attempts] total attempts, after which the op is
    abandoned. Compose {!observer} into the run's observer chain so
    commits disarm the timer.

    Re-submission goes through the same protocol submit entry point —
    which for every protocol here re-routes via the client's current
    coordinator choice — so a retried op can land on a different
    replica than the original. Exactly-once execution under these
    deliberate duplicates is the service layer's job
    ({!Service.Dedup}), which is precisely what the chaos checker
    verifies. Domino has its own in-protocol retry with explicit
    leader failover (see [lib/core/client.ml]); this module covers the
    other four protocols with zero per-protocol wiring. *)

open Domino_sim

type policy = {
  timeout : Time_ns.span;  (** first attempt's patience *)
  factor : float;  (** backoff multiplier per retry *)
  max_attempts : int;  (** total attempts including the first *)
}

val default_policy : policy
(** 800 ms, ×2, 6 attempts — patient enough to span a multi-second
    partition, bounded enough to stop hammering a dead cluster. *)

type t

val create : ?policy:policy -> Engine.t -> t

val set_submit : t -> (Op.t -> unit) -> unit
(** Install the downstream submit function (the protocol's [P.submit]).
    Separate from {!create} because the protocol is constructed after
    the workload plumbing. *)

val submit : t -> Op.t -> unit
(** Forward the op and start its retry clock. Idempotent per op id:
    re-submitting an op already pending does not stack timers. *)

val on_commit : t -> Op.t -> unit

val observer : t -> Observer.t
(** Disarms an op's retry timer when its commit is observed. *)

val retries : t -> int
(** Re-submissions performed. *)

val abandoned : t -> int
(** Ops given up on after [max_attempts]. *)

val inflight : t -> int
