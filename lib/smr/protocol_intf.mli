open Domino_net
open Domino_obs

(** The unified protocol API.

    Every replication protocol in the repo — the four comparison
    systems and Domino itself — implements {!S} and registers a
    first-class module under a stable name. Harnesses (the experiment
    runner, the CLI, the conformance tests) construct an {!env} and
    dispatch through the registry instead of pattern-matching on a
    protocol variant, so adding a protocol means adding one module and
    one [register] call, not editing every caller.

    The [env] record is the whole wiring contract: the protocol builds
    its own network via [make_net] (each protocol has its own message
    type, hence the universally-quantified field), places itself on
    [replicas], and reads deployment roles ([leader],
    [coordinator_of]) and free-form numeric [params] — Domino's config
    knobs travel there so the signature stays protocol-agnostic. *)

type env = {
  make_net : 'msg. unit -> 'msg Fifo_net.t;
      (** fresh network for the protocol's own message type *)
  replicas : Nodeid.t array;
  leader : Nodeid.t;
      (** Multi-Paxos leader; Fast Paxos / DFP coordinator *)
  coordinator_of : Nodeid.t -> Nodeid.t;
      (** per-client entry replica (Mencius, EPaxos) *)
  observer : Observer.t;
  metrics : Metrics.t;
  trace : Trace.sink;
  journal : Journal.sink;
      (** the flight recorder's event stream; {!Journal.null} when
          recording is off *)
  stores : Domino_store.Store.t array;
      (** one stable store per replica, indexed like [replicas]:
          protocols persist safety-critical state here (fsync before
          externalizing) and rebuild from it after a wipe-restart *)
  params : (string * float) list;
      (** protocol-specific knobs, e.g. Domino's
          [additional_delay_ms]; unknown keys are ignored *)
}

val param : env -> string -> default:float -> float

val flag : env -> string -> default:bool -> bool
(** A [params] entry read as a boolean (non-zero = true). *)

module type S = sig
  type t

  val name : string
  (** Stable registry key (lowercase, no spaces). *)

  val create : env -> t
  (** Build the protocol instance: make the net, install handlers and
      the observability instrumentation ({!instrument}). *)

  val submit : t -> Op.t -> unit
  (** Submit from [op.client]'s node. Must fire the observer's
      [on_submit]. *)

  val committed_count : t -> int
  (** Operations the protocol has reported committed. *)

  val fast_slow_counts : t -> (int * int) option
  (** [(fast, slow)] path commits, for protocols with a fast path
      (Fast Paxos, EPaxos, Domino); [None] otherwise. *)

  val extra_stats : t -> (string * int) list
  (** Protocol-specific counters (stable keys), e.g. Domino's
      [dfp_conflicts]. *)

  val gauges : t -> (string * (unit -> float)) list
  (** Named live gauges for the flight recorder's time-series sampler
      (stable keys, registration order preserved), e.g. Domino's
      estimator headroom over ground-truth OWD. [[]] for protocols
      with nothing to sample. *)
end

type protocol = (module S)

val register : protocol -> unit
(** Idempotent: re-registering a name replaces the entry. *)

val find : string -> protocol option

val names : unit -> string list
(** Sorted. *)

val instrument :
  env ->
  name:string ->
  classify:('msg -> Msg_class.t) ->
  op_of:('msg -> Op.t option) ->
  'msg Fifo_net.t ->
  unit
(** Install the observability hook on the protocol's network: counts
    every send, delivery and drop into
    [<name>.msg.<class>.{sent,delivered,dropped}] counters; when the
    flight recorder is on, journals every message event; and — when
    tracing is enabled — emits span events for messages whose
    operation [op_of] can identify. Messages that do not carry the
    operation (bare acks, probes) are counted but not attributed to a
    span. *)
