open Domino_sim
open Domino_net
open Domino_obs

(** The unified protocol API.

    Every replication protocol in the repo — the four comparison
    systems and Domino itself — implements {!S} and registers a
    first-class module under a stable name. Harnesses (the experiment
    runner, the shard fabric, the CLI, the conformance tests)
    construct environments and dispatch through the registry instead
    of pattern-matching on a protocol variant, so adding a protocol
    means adding one module and one [register] call, not editing every
    caller.

    The environment is split in two layers so one simulation can host
    many consensus groups:

    - {!Cluster.env} is shared by every group on an engine: the engine
      itself, the WAN topology, and the cluster-wide observability
      sinks (metrics registry, trace sink, flight-recorder journal).
    - {!Group.env} is one group's slice: its replicas and roles, its
      stable stores, its typed {!params}, its harness observer, and a
      [prefix] that namespaces everything the group emits into the
      shared metrics registry ([g0.domino.msg.*], [g1.run.committed],
      ...). A single-group run uses the empty prefix, which keeps its
      output byte-identical to the historical flat layout. *)

type params = {
  additional_delay : Time_ns.span;
      (** Domino: extra delay added to DFP request timestamps *)
  percentile : float;
      (** Domino: percentile used for delay estimates *)
  every_replica_learns : bool;  (** Domino: learner broadcast mode *)
  adaptive : bool;  (** Domino: §5.4 feedback controller *)
  force_dfp : bool;  (** Domino: disable the DM fallback *)
  retry_timeout : Time_ns.span;
      (** in-protocol client retry patience; [0] disables retry *)
  retry_max_attempts : int;
  retry_failover_after : int;
      (** failed attempts before the client fails over away from its
          coordinator *)
}
(** Protocol knobs, decoded once by the harness with exhaustive
    defaults ({!default_params}) instead of stringly per-call-site
    lookups. Protocols read the fields they care about and ignore the
    rest. *)

val default_params : params

module Cluster : sig
  type env = {
    engine : Engine.t;
    topo : Topology.t;
    metrics : Metrics.t;
    trace : Trace.sink;
    journal : Journal.sink;
        (** the flight recorder's event stream; {!Journal.null} when
            recording is off *)
  }
end

module Group : sig
  type env = {
    cluster : Cluster.env;
    prefix : string;
        (** metric namespace of this group instance, [""] for a
            single-group run, ["g<k>."] within a shard fabric *)
    make_net : 'msg. unit -> 'msg Fifo_net.t;
        (** fresh network for the protocol's own message type, spanning
            this group's replicas and its clients *)
    replicas : Nodeid.t array;
    leader : Nodeid.t;
        (** Multi-Paxos leader; Fast Paxos / DFP coordinator *)
    coordinator_of : Nodeid.t -> Nodeid.t;
        (** per-client entry replica (Mencius, EPaxos) *)
    observer : Observer.t;
    stores : Domino_store.Store.t array;
        (** one stable store per replica, indexed like [replicas]:
            protocols persist safety-critical state here (fsync before
            externalizing) and rebuild from it after a wipe-restart *)
    params : params;
  }

  val metrics : env -> Metrics.t
  val trace : env -> Trace.sink
  val journal : env -> Journal.sink

  val qualify : env -> string -> string
  (** [qualify g name] is [g.prefix ^ name] — the group-namespaced
      instrument name. *)
end

type env = Group.env
(** A protocol is created from its group's environment. *)

type control =
  | Transfer of { from_ : Nodeid.t; to_ : Nodeid.t }
      (** Graceful, non-crash handoff of coordination duties away from
          [from_] toward [to_]: the Multi-Paxos leader role drains and
          flips, the Mencius coordinator lease for clients fronted by
          [from_] is handed to [to_], Domino steers every client's DM
          routing around [from_]. *)
  | Restore of { node : Nodeid.t }
      (** Undo any steering installed against [node] once it is back
          in service (transferred leadership stays where it went). *)

(** A planned operation, driven by the reconfiguration / rolling-patch
    orchestrators. *)

module type S = sig
  type t

  val name : string
  (** Stable registry key (lowercase, no spaces). *)

  val create : Group.env -> t
  (** Build the protocol instance: make the net, install handlers and
      the observability instrumentation ({!instrument}). *)

  val submit : t -> Op.t -> unit
  (** Submit from [op.client]'s node. Must fire the observer's
      [on_submit]. *)

  val committed_count : t -> int
  (** Operations the protocol has reported committed. *)

  val fast_slow_counts : t -> (int * int) option
  (** [(fast, slow)] path commits, for protocols with a fast path
      (Fast Paxos, EPaxos, Domino); [None] otherwise. *)

  val extra_stats : t -> (string * int) list
  (** Protocol-specific counters (stable keys), e.g. Domino's
      [dfp_conflicts]. *)

  val gauges : t -> (string * (unit -> float)) list
  (** Named live gauges for the flight recorder's time-series sampler
      (stable keys, registration order preserved), e.g. Domino's
      estimator headroom over ground-truth OWD. [[]] for protocols
      with nothing to sample. *)

  val control : t -> control -> k:(unit -> unit) -> bool
  (** Ask the protocol to perform a planned operation. [false] if
      unsupported by this protocol (leaderless protocols refuse; the
      continuation is dropped); [true] if accepted, in which case [k]
      fires exactly once when the operation completes — possibly
      synchronously, or after a bounded drain for handoffs that wait
      out in-flight work. *)
end

type protocol = (module S)

val register : protocol -> protocol
(** Idempotent: re-registering a name replaces the entry. Returns the
    module it registered so call sites can bind the instance directly
    instead of re-resolving it through {!find}. *)

val find : string -> protocol option

val names : unit -> string list
(** Sorted. *)

val instrument :
  Group.env ->
  name:string ->
  classify:('msg -> Msg_class.t) ->
  op_of:('msg -> Op.t option) ->
  'msg Fifo_net.t ->
  unit
(** Install the observability hook on the protocol's network: counts
    every send, delivery and drop into
    [<prefix><name>.msg.<class>.{sent,delivered,dropped}] counters —
    the group's prefix keeps two groups running the same protocol from
    colliding on one instrument; when the flight recorder is on,
    journals every message event; and — when tracing is enabled —
    emits span events for messages whose operation [op_of] can
    identify. Messages that do not carry the operation (bare acks,
    probes) are counted but not attributed to a span. *)
