open Domino_sim
open Domino_obs

type change =
  | Add of int
  | Remove of int
  | Replace of { node : int; with_ : int }

type outcome = {
  change : change;
  epoch : int;
  queued : int;
  started_at : Time_ns.t;
  finished_at : Time_ns.t;
  aborted : bool;
}

(* The orchestrator drives everything through callbacks so the group's
   harness (the shard fabric) stays the only module that knows about
   the router, the network, and the protocol instance at once — the
   same inversion [Fault.Roll] uses. *)
type hooks = {
  control : Protocol_intf.control -> k:(unit -> unit) -> bool;
      (** the group protocol's planned-operation entry point *)
  freeze : unit -> unit;  (** park all new submits routed to the group *)
  unfreeze : unit -> int;  (** release them; returns how many queued *)
  inflight : unit -> int;  (** submitted-but-uncommitted ops on the group *)
  crash_node : int -> unit;  (** take a removed replica off the network *)
  recover_node : int -> unit;  (** readmit an added replica *)
}

type t = {
  engine : Engine.t;
  journal : Journal.sink;
  group : int;
  n : int;
  members : bool array;
  stores : Domino_store.Store.t array;
  hooks : hooks;
  poll : Time_ns.span;
  drain_deadline : Time_ns.span;
  mutant : bool;
  mutable holder : int;
  mutable epoch : int;
  mutable active : bool;
  mutable outcomes_r : outcome list;  (** newest first *)
}

let create engine ~journal ~group ~n ~leader ~stores ~hooks
    ?(poll = Time_ns.ms 10) ?(drain_deadline = Time_ns.ms 1500)
    ?(mutant = false) () =
  if n <= 0 then invalid_arg "Reconfig.create: empty group";
  if Array.length stores <> n then
    invalid_arg "Reconfig.create: one store per replica required";
  if leader < 0 || leader >= n then invalid_arg "Reconfig.create: bad leader";
  {
    engine;
    journal;
    group;
    n;
    members = Array.make n true;
    stores;
    hooks;
    poll;
    drain_deadline;
    mutant;
    holder = leader;
    epoch = 0;
    active = false;
    outcomes_r = [];
  }

let epoch t = t.epoch

let holder t = t.holder

let active t = t.active

let is_member t node = node >= 0 && node < t.n && t.members.(node)

let members t =
  let out = ref [] in
  for i = t.n - 1 downto 0 do
    if t.members.(i) then out := i :: !out
  done;
  !out

let outcomes t = List.rev t.outcomes_r

let emit t ~stage ~detail =
  if Journal.enabled t.journal then
    Journal.emit t.journal
      (Journal.Reconfig
         {
           stage;
           group = t.group;
           epoch = t.epoch;
           detail;
           at = Engine.now t.engine;
         })

(* --- leader transfer ---

   A graceful, non-crash handoff: no freeze, no epoch bump — the
   protocol itself drains whatever the handoff needs (Multi-Paxos
   parks requests while its open slots empty; Mencius and Domino
   re-steer routing and are done immediately). [from_] defaults to the
   tracked coordination holder; [Fault.Roll] passes an explicit
   [from_] to steer clients away from a non-leader replica it is about
   to wipe. Protocols with no coordination role at [from_] accept
   vacuously, so a transfer always completes and always journals its
   [reconfig.transfer] / [reconfig.transfer_done] pair (the dip
   analyzer's start/heal anchors). *)
let transfer t ?from_ ~to_ ~k () =
  let from_ = match from_ with Some f -> f | None -> t.holder in
  if not (is_member t to_) || not (is_member t from_) then false
  else if from_ = to_ then begin
    k ();
    true
  end
  else begin
    let detail = Printf.sprintf "node=%d to=%d" from_ to_ in
    emit t ~stage:"transfer" ~detail;
    let fin () =
      if t.holder = from_ then t.holder <- to_;
      emit t ~stage:"transfer_done" ~detail;
      k ()
    in
    if not (t.hooks.control (Protocol_intf.Transfer { from_; to_ }) ~k:fin)
    then
      (* Leaderless protocol: nothing to hand off, vacuously complete. *)
      fin ();
    true
  end

let restore t ~node =
  if is_member t node then
    ignore (t.hooks.control (Protocol_intf.Restore { node }) ~k:(fun () -> ()))

(* --- membership change ---

   Stop-the-world epoch bump:

     begin -> freeze -> (drain poll) -> persist config on every member
           -> epoch -> apply (crash removed / readmit added) -> unfreeze
           -> done

   or, when the drain deadline expires first: begin -> abort (unfreeze
   without any change, epoch untouched). Persisting the new config on
   every post-change member's stable store *before* the epoch event is
   the externalization gate: a config the journal shows as active is
   one every member would recover with.

   Quorum arithmetic stays over the group's original size [n] — a
   removal narrows the fault budget rather than shrinking quorums, so
   the group must keep a live majority of the original membership.
   [mutant] is the deliberately-broken stale-config build: the removed
   replica is never taken off the network, so it keeps executing ops
   past its removal — exactly what the chaos checker's removed-node
   rule must catch. *)

let change_detail = function
  | Add node -> Printf.sprintf "node=%d add" node
  | Remove node -> Printf.sprintf "node=%d remove" node
  | Replace { node; with_ } ->
    Printf.sprintf "node=%d replace with=%d" node with_

let members_str members =
  let out = ref [] in
  Array.iteri (fun i m -> if m then out := i :: !out) members;
  String.concat "," (List.rev_map string_of_int !out)

let validate_change t change =
  match change with
  | Add node ->
    if node < 0 || node >= t.n then Error "add: node out of range"
    else if t.members.(node) then Error "add: node already a member"
    else Ok ()
  | Remove node ->
    if not (is_member t node) then Error "remove: node not a member"
    else if
      Array.fold_left (fun acc m -> if m then acc + 1 else acc) 0 t.members - 1
      < (t.n / 2) + 1
    then Error "remove: would drop below a majority of the original group"
    else Ok ()
  | Replace { node; with_ } ->
    if not (is_member t node) then Error "replace: node not a member"
    else if with_ < 0 || with_ >= t.n then Error "replace: with out of range"
    else if t.members.(with_) then Error "replace: with already a member"
    else Ok ()

let request t change ~k =
  if t.active then false
  else
    match validate_change t change with
    | Error _ -> false
    | Ok () ->
      t.active <- true;
      let started_at = Engine.now t.engine in
      let detail = change_detail change in
      let removed =
        match change with
        | Remove node | Replace { node; _ } -> Some node
        | Add _ -> None
      in
      let finish ~epoch ~queued ~aborted =
        t.active <- false;
        t.outcomes_r <-
          {
            change;
            epoch;
            queued;
            started_at;
            finished_at = Engine.now t.engine;
            aborted;
          }
          :: t.outcomes_r;
        k ()
      in
      let apply_and_release () =
        (* Everything from the epoch bump to the unfreeze happens in one
           closure, so no op can route against a half-applied config. *)
        t.epoch <- t.epoch + 1;
        emit t ~stage:"epoch" ~detail;
        (match change with
        | Add node ->
          t.members.(node) <- true;
          t.hooks.recover_node node;
          restore t ~node
        | Remove node ->
          t.members.(node) <- false;
          if not t.mutant then t.hooks.crash_node node
        | Replace { node; with_ } ->
          t.members.(node) <- false;
          if not t.mutant then t.hooks.crash_node node;
          t.members.(with_) <- true;
          t.hooks.recover_node with_;
          restore t ~node:with_);
        let queued = t.hooks.unfreeze () in
        emit t ~stage:"done" ~detail:(Printf.sprintf "%s queued=%d" detail queued);
        finish ~epoch:t.epoch ~queued ~aborted:false
      in
      let persist () =
        (* Persist-then-act: every member of the NEW configuration
           fsyncs the config record before the epoch externalizes. *)
        let members_after = Array.copy t.members in
        (match change with
        | Add node -> members_after.(node) <- true
        | Remove node -> members_after.(node) <- false
        | Replace { node; with_ } ->
          members_after.(node) <- false;
          members_after.(with_) <- true);
        let record =
          Printf.sprintf "config group=%d epoch=%d members=%s" t.group
            (t.epoch + 1)
            (members_str members_after)
        in
        let targets = ref [] in
        Array.iteri
          (fun i m -> if m then targets := t.stores.(i) :: !targets)
          members_after;
        let want = List.length !targets in
        let landed = ref 0 in
        List.iter
          (fun st ->
            Domino_store.Store.append_sync st record (fun () ->
                incr landed;
                if !landed = want then apply_and_release ()))
          !targets
      in
      let begin_change () =
        emit t ~stage:"begin" ~detail;
        t.hooks.freeze ();
        let deadline = Time_ns.add (Engine.now t.engine) t.drain_deadline in
        let rec poll_drain () =
          let left = t.hooks.inflight () in
          if left = 0 then persist ()
          else if Engine.now t.engine >= deadline then begin
            let queued = t.hooks.unfreeze () in
            emit t ~stage:"abort"
              ~detail:(Printf.sprintf "%s left=%d queued=%d" detail left queued);
            finish ~epoch:t.epoch ~queued ~aborted:true
          end
          else Engine.schedule t.engine ~delay:t.poll poll_drain
        in
        poll_drain ()
      in
      (* Removing the coordination holder: steer duties away first so
         the group is not leaderless the instant the node goes. *)
      (match removed with
      | Some node when node = t.holder -> (
        let target =
          List.find_opt (fun m -> m <> node) (members t)
        in
        match target with
        | Some to_ ->
          if not (transfer t ~to_ ~k:begin_change ()) then begin_change ()
        | None -> begin_change ())
      | _ -> begin_change ());
      true
