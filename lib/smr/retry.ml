open Domino_sim

type policy = {
  timeout : Time_ns.span;
  factor : float;
  max_attempts : int;
}

let default_policy = { timeout = Time_ns.ms 800; factor = 2.; max_attempts = 6 }

type entry = {
  op : Op.t;
  mutable attempts : int;
  mutable timeout : Time_ns.span;
  mutable timer : Engine.event_id option;
}

type t = {
  engine : Engine.t;
  policy : policy;
  mutable submit_fn : (Op.t -> unit) option;
  pending : (Op.id, entry) Hashtbl.t;
  mutable retries : int;
  mutable abandoned : int;
}

let create ?(policy = default_policy) engine =
  {
    engine;
    policy;
    submit_fn = None;
    pending = Hashtbl.create 256;
    retries = 0;
    abandoned = 0;
  }

let set_submit t f = t.submit_fn <- Some f

let forward t op =
  match t.submit_fn with
  | Some f -> f op
  | None -> invalid_arg "Retry: submit function not set"

let rec arm t e =
  e.timer <-
    Some
      (Engine.schedule_cancellable t.engine ~delay:e.timeout (fun () ->
           on_timeout t e))

and on_timeout t e =
  e.timer <- None;
  let id = Op.id e.op in
  if Hashtbl.mem t.pending id then begin
    if e.attempts >= t.policy.max_attempts then begin
      t.abandoned <- t.abandoned + 1;
      Hashtbl.remove t.pending id
    end
    else begin
      e.attempts <- e.attempts + 1;
      t.retries <- t.retries + 1;
      e.timeout <-
        Time_ns.of_ms_f (Time_ns.to_ms_f e.timeout *. t.policy.factor);
      forward t e.op;
      arm t e
    end
  end

let submit t op =
  let id = Op.id op in
  forward t op;
  if not (Hashtbl.mem t.pending id) then begin
    let e = { op; attempts = 1; timeout = t.policy.timeout; timer = None } in
    Hashtbl.replace t.pending id e;
    arm t e
  end

let on_commit t op =
  match Hashtbl.find_opt t.pending (Op.id op) with
  | None -> ()
  | Some e ->
    (match e.timer with
    | Some id -> Engine.cancel t.engine id
    | None -> ());
    e.timer <- None;
    Hashtbl.remove t.pending (Op.id op)

let observer t = { Observer.null with on_commit = (fun op ~now:_ -> on_commit t op) }

let retries t = t.retries

let abandoned t = t.abandoned

let inflight t = Hashtbl.length t.pending
