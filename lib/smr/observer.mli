open Domino_sim
open Domino_net

(** Observation points shared by every protocol implementation.

    A protocol reports three events per operation:
    - [submit]: the moment the client library accepts the operation
      (emitted by each protocol's [submit], so harnesses no longer
      book-keep submissions by hand);
    - [commit]: the moment the {e submitting client} learns the
      operation is committed (the paper's commit latency, §5);
    - [execute]: the moment a given {e replica} applies the operation
      to its state machine (used for the paper's execution latency,
      measured at the replica closest to the client, §7.2.3).

    Protocols additionally annotate named phase transitions via
    [on_phase] — the flight recorder turns these into journal events
    and timeline slices. [dur] is [0] for an instantaneous transition,
    positive for a span starting at [now] (e.g. Domino's
    ["sched_wait"]: a replica holding a request until its scheduled
    arrival timestamp). [op] is the operation concerned, when there is
    a specific one.

    {!Recorder} is the standard implementation: it timestamps
    submissions and turns the events into latency samples. *)

type t = {
  on_submit : Op.t -> now:Time_ns.t -> unit;
  on_commit : Op.t -> now:Time_ns.t -> unit;
  on_execute : replica:Nodeid.t -> Op.t -> now:Time_ns.t -> unit;
  on_phase :
    node:Nodeid.t ->
    op:Op.t option ->
    name:string ->
    dur:Time_ns.span ->
    now:Time_ns.t ->
    unit;
}

val null : t
(** Discards all events. *)

val both : t -> t -> t

module Recorder : sig
  type observer = t

  type t

  val create : unit -> t

  val observer : t -> ?exec_replica_for:(Op.t -> Nodeid.t option) -> unit -> observer
  (** The observer to hand to a protocol. [exec_replica_for] selects,
      per operation, the replica whose execution event should produce
      the execution-latency sample (default: record the {e first}
      replica to execute it). *)

  val note_submit : t -> Op.t -> now:Time_ns.t -> unit
  (** Timestamp a submission. Normally unnecessary: the observer's
      [on_submit] (fired by every protocol's [submit]) calls this. Kept
      public for unit tests that drive a recorder without a protocol. *)

  val start_measuring : t -> Time_ns.t -> unit
  (** Samples from operations submitted before this instant are
      discarded — the paper uses the middle 60 s of each 90 s run. *)

  val stop_measuring : t -> Time_ns.t -> unit

  val commit_latency_ms : t -> Domino_stats.Summary.t
  val exec_latency_ms : t -> Domino_stats.Summary.t

  val commit_latency_of_client_ms : t -> Nodeid.t -> Domino_stats.Summary.t

  val committed : t -> int
  val submitted : t -> int

  val commit_times : t -> (Op.id * Time_ns.t) list
  (** (id, commit instant) pairs. *)

  val latency_series : t -> (Time_ns.t * float) list
  (** (submit instant, commit latency ms) pairs in submit order, for
      time-series figures (Fig 12). *)
end
