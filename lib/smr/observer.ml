open Domino_sim
open Domino_net

type t = {
  on_submit : Op.t -> now:Time_ns.t -> unit;
  on_commit : Op.t -> now:Time_ns.t -> unit;
  on_execute : replica:Nodeid.t -> Op.t -> now:Time_ns.t -> unit;
  on_phase :
    node:Nodeid.t ->
    op:Op.t option ->
    name:string ->
    dur:Time_ns.span ->
    now:Time_ns.t ->
    unit;
}

let null =
  {
    on_submit = (fun _ ~now:_ -> ());
    on_commit = (fun _ ~now:_ -> ());
    on_execute = (fun ~replica:_ _ ~now:_ -> ());
    on_phase = (fun ~node:_ ~op:_ ~name:_ ~dur:_ ~now:_ -> ());
  }

let both a b =
  {
    on_submit =
      (fun op ~now ->
        a.on_submit op ~now;
        b.on_submit op ~now);
    on_commit =
      (fun op ~now ->
        a.on_commit op ~now;
        b.on_commit op ~now);
    on_execute =
      (fun ~replica op ~now ->
        a.on_execute ~replica op ~now;
        b.on_execute ~replica op ~now);
    on_phase =
      (fun ~node ~op ~name ~dur ~now ->
        a.on_phase ~node ~op ~name ~dur ~now;
        b.on_phase ~node ~op ~name ~dur ~now);
  }

module Recorder = struct
  type observer = t

  type t = {
    mutable submit_times : Time_ns.t Op.Idmap.t;
    mutable committed_ids : Op.Idset.t;
    mutable executed_ids : Op.Idset.t;
    commit_ms : Domino_stats.Summary.t;
    exec_ms : Domino_stats.Summary.t;
    mutable per_client : Domino_stats.Summary.t Nodeid.Map.t;
    mutable commits : (Op.id * Time_ns.t) list;
    mutable series : (Time_ns.t * float) list;  (** (submit time, latency ms) *)
    mutable measure_from : Time_ns.t;
    mutable measure_until : Time_ns.t;
    mutable submitted : int;
  }

  let create () =
    {
      submit_times = Op.Idmap.empty;
      committed_ids = Op.Idset.empty;
      executed_ids = Op.Idset.empty;
      commit_ms = Domino_stats.Summary.create ();
      exec_ms = Domino_stats.Summary.create ();
      per_client = Nodeid.Map.empty;
      commits = [];
      series = [];
      measure_from = min_int;
      measure_until = max_int;
      submitted = 0;
    }

  let note_submit t op ~now =
    (* Keep the first submission: a client retry re-announces the same
       op id, and latency must be measured from the original send. *)
    let id = Op.id op in
    if not (Op.Idmap.mem id t.submit_times) then begin
      t.submitted <- t.submitted + 1;
      t.submit_times <- Op.Idmap.add id now t.submit_times
    end

  let start_measuring t at = t.measure_from <- at

  let stop_measuring t at = t.measure_until <- at

  let in_window t sent = sent >= t.measure_from && sent <= t.measure_until

  let client_summary t client =
    match Nodeid.Map.find_opt client t.per_client with
    | Some s -> s
    | None ->
      let s = Domino_stats.Summary.create () in
      t.per_client <- Nodeid.Map.add client s t.per_client;
      s

  let observer t ?exec_replica_for () =
    let on_commit (op : Op.t) ~now =
      let id = Op.id op in
      if not (Op.Idset.mem id t.committed_ids) then begin
        t.committed_ids <- Op.Idset.add id t.committed_ids;
        match Op.Idmap.find_opt id t.submit_times with
        | None -> ()
        | Some sent ->
          if in_window t sent then begin
            let lat = Time_ns.to_ms_f (Time_ns.diff now sent) in
            Domino_stats.Summary.add t.commit_ms lat;
            Domino_stats.Summary.add (client_summary t op.client) lat;
            t.commits <- (id, now) :: t.commits;
            t.series <- (sent, lat) :: t.series
          end
      end
    in
    let on_execute ~replica (op : Op.t) ~now =
      let id = Op.id op in
      let wanted =
        match exec_replica_for with
        | None -> not (Op.Idset.mem id t.executed_ids)
        | Some f -> begin
          match f op with
          | None -> not (Op.Idset.mem id t.executed_ids)
          | Some r -> Nodeid.equal r replica
        end
      in
      if wanted && not (Op.Idset.mem id t.executed_ids) then begin
        t.executed_ids <- Op.Idset.add id t.executed_ids;
        match Op.Idmap.find_opt id t.submit_times with
        | None -> ()
        | Some sent ->
          if in_window t sent then
            Domino_stats.Summary.add t.exec_ms
              (Time_ns.to_ms_f (Time_ns.diff now sent))
      end
    in
    {
      on_submit = (fun op ~now -> note_submit t op ~now);
      on_commit;
      on_execute;
      on_phase = (fun ~node:_ ~op:_ ~name:_ ~dur:_ ~now:_ -> ());
    }

  let commit_latency_ms t = t.commit_ms

  let exec_latency_ms t = t.exec_ms

  let commit_latency_of_client_ms t client = client_summary t client

  let committed t = Op.Idset.cardinal t.committed_ids

  let submitted t = t.submitted

  let commit_times t = List.rev t.commits

  let latency_series t = List.rev t.series
end
