open Domino_sim
open Domino_net

type 'msg t = {
  engine : Engine.t;
  service_time : Time_ns.span;
  inner : src:Nodeid.t -> 'msg -> unit;
  mutable busy_until : Time_ns.t;
  mutable processed : int;
  mutable busy_time : Time_ns.span;
  mutable depth : int;
}

let wrap engine ~service_time inner =
  {
    engine;
    service_time;
    inner;
    busy_until = Time_ns.zero;
    processed = 0;
    busy_time = 0;
    depth = 0;
  }

let handler t ~src msg =
  let now = Engine.now t.engine in
  let start = Time_ns.max now t.busy_until in
  let finish = Time_ns.add start t.service_time in
  t.busy_until <- finish;
  t.busy_time <- t.busy_time + t.service_time;
  t.depth <- t.depth + 1;
  ignore
    (Engine.schedule_at t.engine ~at:finish (fun () ->
         t.depth <- t.depth - 1;
         t.processed <- t.processed + 1;
         t.inner ~src msg))

let processed t = t.processed

let busy_time t = t.busy_time

let queue_depth t = t.depth

(* At-most-once execution filter: client retries can drive the same op
   through consensus twice (two commit decisions for two instances
   carrying the same op id); the service layer must execute it once. *)
module Dedup = struct
  type t = {
    enabled : bool;
    mutable seen : Op.Idset.t;
    mutable dups : int;
  }

  let create ?(enabled = true) () = { enabled; seen = Op.Idset.empty; dups = 0 }

  let fresh t op =
    if not t.enabled then true
    else begin
      let id = Op.id op in
      if Op.Idset.mem id t.seen then begin
        t.dups <- t.dups + 1;
        false
      end
      else begin
        t.seen <- Op.Idset.add id t.seen;
        true
      end
    end

  let duplicates t = t.dups
end
