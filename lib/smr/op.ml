open Domino_net

type t = { client : Nodeid.t; seq : int; key : int; value : int64 }

type id = Nodeid.t * int

let make ~client ~seq ~key ~value = { client; seq; key; value }

let id t = (t.client, t.seq)

let compare_id (c1, s1) (c2, s2) =
  match Nodeid.compare c1 c2 with 0 -> Int.compare s1 s2 | c -> c

let conflicts a b = a.key = b.key && compare_id (id a) (id b) <> 0

let pp fmt t =
  Format.fprintf fmt "op(%a#%d k=%d)" Nodeid.pp t.client t.seq t.key

(* Wire form for stable-storage records: colon-separated, no spaces, so
   an op is a single token inside a space-separated log record. *)
let to_wire t = Printf.sprintf "%d:%d:%d:%Ld" t.client t.seq t.key t.value

let of_wire s =
  match String.split_on_char ':' s with
  | [ c; q; k; v ] -> (
    match
      ( int_of_string_opt c,
        int_of_string_opt q,
        int_of_string_opt k,
        Int64.of_string_opt v )
    with
    | Some client, Some seq, Some key, Some value ->
      Some { client; seq; key; value }
    | _ -> None)
  | _ -> None

module Idord = struct
  type t = id

  let compare = compare_id
end

module Idmap = Map.Make (Idord)
module Idset = Set.Make (Idord)
