open Domino_sim
open Domino_net

(** Per-node message-processing capacity (for the throughput study).

    WAN latency experiments can treat message handling as free, but the
    paper's Figure 13 measures peak throughput inside a LAN cluster,
    where CPU — not propagation — is the bottleneck. A [t] wraps a
    node's message handler in a single-server FIFO queue with a fixed
    service time per message, making the node a classic M/D/1 server:
    offered load beyond [1/service_time] messages/s queues up and
    latency diverges, which is exactly how a peak-throughput knee
    appears. *)

type 'msg t

val wrap :
  Engine.t ->
  service_time:Time_ns.span ->
  (src:Nodeid.t -> 'msg -> unit) ->
  'msg t

val handler : 'msg t -> src:Nodeid.t -> 'msg -> unit
(** The queued handler to register with {!Fifo_net.set_handler}. *)

val processed : 'msg t -> int

val busy_time : 'msg t -> Time_ns.span
(** Total time spent serving, for utilisation computations. *)

val queue_depth : 'msg t -> int
(** Messages currently waiting or in service. *)

(** At-most-once execution by op id.

    Client retries can legitimately drive the same operation through
    consensus more than once (each attempt wins its own instance); the
    service layer in front of the state machine must apply it exactly
    once. One [Dedup.t] guards one replica's execution stream. *)
module Dedup : sig
  type t

  val create : ?enabled:bool -> unit -> t
  (** [enabled] defaults to [true]; [~enabled:false] makes {!fresh}
      always answer [true] — the deliberately-unsafe mutant the chaos
      tests use to prove the checker catches double execution. *)

  val fresh : t -> Op.t -> bool
  (** First sighting of this op id? Callers execute iff [true]. *)

  val duplicates : t -> int
  (** Executions suppressed so far. *)
end
