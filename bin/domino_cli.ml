(* domino-sim: command-line front end for the Domino reproduction.

   Subcommands:
     run        simulate one protocol over a deployment and print latency
     probe      generate a synthetic inter-DC trace and analyse predictability
     geometry   the paper's §4 placement analysis
     experiment regenerate one (or all) of the paper's tables/figures
     analyze    replay a journal file into windowed timelines + dip reports *)

open Cmdliner
open Domino_sim
open Domino_smr
open Domino_exp

(* --- shared argument parsers --- *)

let write_file file contents =
  match open_out file with
  | oc ->
    Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
        output_string oc contents)
  | exception Sys_error msg ->
    Format.eprintf "domino-sim: %s@." msg;
    exit 1

let faults_arg =
  Cmdliner.Arg.(
    value & opt (some string) None
    & info [ "faults" ] ~docv:"FILE"
        ~doc:
          "Inject the fault plan in $(docv) into the run: timed \
           crash/recover, partitions, link degradation, clock skew, \
           and orchestrated maintenance — slot migration ('migrate \
           slot=3 to=1'), leader transfer ('transfer group=0 to=1'), \
           membership change ('reconfig group=0 remove=2'), rolling \
           patch ('roll group=0 dwell=500ms') — one event per line, \
           e.g. 'at 2s crash node=0'; see test/plans/ for examples.")

let check_arg =
  Cmdliner.Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Replay the run's journal through the safety checker \
           (exactly-once execution, per-key log-prefix agreement, write \
           linearizability) and exit non-zero on violations. Implies \
           flight recording.")

(* Read and parse a --faults plan file; any error is fatal before the
   simulation starts. *)
let load_plan = function
  | None -> None
  | Some file ->
    let contents =
      match open_in_bin file with
      | ic ->
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      | exception Sys_error msg ->
        Format.eprintf "domino-sim: %s@." msg;
        exit 2
    in
    (match Domino_fault.Plan.parse contents with
    | Ok plan -> Some plan
    | Error msg ->
      Format.eprintf "domino-sim: %s: %s@." file msg;
      exit 2)

let run_checker j =
  (* The slot resolver lets the checker's epoch-split rule key each
     op's migration history off the fabric's slots mark. *)
  let report =
    Domino_fault.Checker.check
      ~slot_resolver:Domino_shard.Slots.slot_resolver_of_mark j
  in
  Format.printf "@.%a@." Domino_fault.Checker.pp_report report;
  if not report.Domino_fault.Checker.ok then exit 1

let journal_out_arg =
  Cmdliner.Arg.(
    value & opt (some string) None
    & info [ "journal-out" ] ~docv:"FILE"
        ~doc:
          "Record the run in the flight recorder and write the journal \
           (one event per line, deterministic bytes) to $(docv).")

let perfetto_out_arg =
  Cmdliner.Arg.(
    value & opt (some string) None
    & info [ "perfetto-out" ] ~docv:"FILE"
        ~doc:
          "Record the run and write a Chrome/Perfetto trace-event JSON \
           file to $(docv) (open at ui.perfetto.dev).")

let timeline_out_arg =
  Cmdliner.Arg.(
    value & opt (some string) None
    & info [ "timeline-out" ] ~docv:"FILE"
        ~doc:
          "Aggregate the run into a fixed-window timeline (per-window \
           throughput, latency quantiles, inflight, drops, durable \
           writes) and write it as deterministic CSV to $(docv).")

let timeline_window_arg =
  Cmdliner.Arg.(
    value & opt float 100.
    & info [ "timeline-window" ] ~docv:"MS"
        ~doc:"Timeline window width in milliseconds of sim time.")

let timeline_window_span ms =
  if ms <= 0. then begin
    Format.eprintf "domino-sim: --timeline-window must be positive@.";
    exit 2
  end;
  Time_ns.of_ms_f ms

(* Offline replay shares the fabric's slot-mark resolver so sharded
   journals attribute per group exactly as the live router did. *)
let timeline_of_journal ~window j =
  Domino_obs.Timeline.of_journal ~window
    ~group_resolver:Domino_shard.Slots.resolver_of_mark j

let seed_arg =
  let doc = "Random seed (runs are deterministic per seed)." in
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"N" ~doc)

let scheduler_arg =
  let doc =
    "Event-queue implementation: $(b,wheel) (hierarchical timing wheel, \
     default) or $(b,pheap) (binary heap). Runs are byte-identical \
     across the two; the flag exists for A/B measurement and as a \
     fallback."
  in
  Arg.(
    value
    & opt
        (enum
           [ ("wheel", Engine.Wheel_sched); ("pheap", Engine.Pheap_sched) ])
        Engine.Wheel_sched
    & info [ "scheduler" ] ~docv:"IMPL" ~doc)

let setting_arg =
  let settings =
    [
      ("globe3", Exp_common.globe3);
      ("na3", Exp_common.na3);
      ("na5", Exp_common.na5);
      ("fig7-single", Exp_common.fig7_single);
      ("fig7-double", Exp_common.fig7_double);
    ]
  in
  let doc =
    "Deployment: one of " ^ String.concat ", " (List.map fst settings) ^ "."
  in
  Arg.(
    value
    & opt (enum settings) Exp_common.globe3
    & info [ "setting" ] ~docv:"SETTING" ~doc)

let protocol_arg additional_delay percentile =
  let mk = function
    | "domino" ->
      Exp_common.Domino
        {
          additional_delay = Time_ns.of_ms_f additional_delay;
          percentile;
          every_replica_learns = false;
          adaptive = false;
        }
    | "mencius" -> Exp_common.Mencius
    | "epaxos" -> Exp_common.Epaxos
    | "multipaxos" -> Exp_common.Multi_paxos
    | "fastpaxos" -> Exp_common.Fast_paxos
    | _ -> assert false
  in
  mk

let protocol_name_arg =
  let doc = "Protocol: domino, mencius, epaxos, multipaxos or fastpaxos." in
  Arg.(
    value
    & opt (enum
             [
               ("domino", "domino");
               ("mencius", "mencius");
               ("epaxos", "epaxos");
               ("multipaxos", "multipaxos");
               ("fastpaxos", "fastpaxos");
             ])
        "domino"
    & info [ "protocol"; "p" ] ~docv:"PROTO" ~doc)

(* --- run --- *)

let run_cmd =
  let duration =
    Arg.(value & opt int 15 & info [ "duration" ] ~docv:"SECONDS"
           ~doc:"Simulated run length.")
  in
  let rate =
    Arg.(value & opt float 200. & info [ "rate" ] ~docv:"RPS"
           ~doc:"Requests per second per client.")
  in
  let alpha =
    Arg.(value & opt float 0.75 & info [ "alpha" ] ~docv:"A"
           ~doc:"Zipfian skew of the key distribution.")
  in
  let additional_delay =
    Arg.(value & opt float 0. & info [ "additional-delay" ] ~docv:"MS"
           ~doc:"Extra delay added to DFP request timestamps (Domino).")
  in
  let percentile =
    Arg.(value & opt float 95. & info [ "percentile" ] ~docv:"P"
           ~doc:"Percentile used for delay estimates (Domino).")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
           & info [ "metrics-out" ] ~docv:"FILE"
               ~doc:"Write the run's metrics registry (message-class \
                     counters, latency histograms) as JSON to $(docv).")
  in
  let trace_op =
    Arg.(value & opt (some int) None
           & info [ "trace-op" ] ~docv:"N"
               ~doc:"Print the life of the N-th submitted operation \
                     (0-based, global submit order) as a span tree.")
  in
  let fsync_us =
    Arg.(value & opt (some float) None
           & info [ "fsync-us" ] ~docv:"US"
               ~doc:"Modeled fsync barrier latency in microseconds \
                     (default 40, a power-loss-protected NVMe; try 500 \
                     or 2000 for cloud block storage).")
  in
  let batch_sync_us =
    Arg.(value & opt (some float) None
           & info [ "batch-sync-us" ] ~docv:"US"
               ~doc:"Hold each fsync barrier open for $(docv) \
                     microseconds so concurrent writes share one flush, \
                     trading commit latency for fewer syncs (default: \
                     immediate).")
  in
  let no_durability =
    Arg.(value & flag
           & info [ "no-durability" ]
               ~doc:"Skip-fsync mutant: writes cost the same but a \
                     crash-with-amnesia loses the whole log. Combine \
                     with --faults (wipe events) and --check to watch \
                     the safety checker catch the violation.")
  in
  let action seed scheduler setting proto_name duration rate alpha additional
      percentile metrics_out trace_op fsync_us batch_sync_us no_durability
      journal_out perfetto_out timeline_out timeline_window faults_file check =
    Engine.set_default_scheduler scheduler;
    let proto = protocol_arg additional percentile proto_name in
    let faults = load_plan faults_file in
    let store =
      let p = Domino_store.Store.default_params in
      let p =
        match fsync_us with
        | None -> p
        | Some us ->
          { p with Domino_store.Store.sync_latency = Time_ns.of_ms_f (us /. 1000.) }
      in
      let p =
        match batch_sync_us with
        | None -> p
        | Some us ->
          { p with
            Domino_store.Store.mode =
              Domino_store.Store.Batched (Time_ns.of_ms_f (us /. 1000.)) }
      in
      if no_durability then { p with Domino_store.Store.durable = false } else p
    in
    let journal =
      match (journal_out, perfetto_out, check) with
      | None, None, false -> None
      | _ -> Some (Domino_obs.Journal.create ())
    in
    let agg =
      match timeline_out with
      | None -> None
      | Some _ ->
        Some
          (Domino_obs.Timeline.create
             ~window:(timeline_window_span timeline_window)
             ())
    in
    let r =
      Exp_common.run ~seed ~rate ~alpha ~duration:(Time_ns.sec duration)
        ?trace_op ?journal ?timeline:agg ?faults ~store setting proto
    in
    let timeline = Option.map Domino_obs.Timeline.finish agg in
    let commit = Observer.Recorder.commit_latency_ms r.recorder in
    let exec = Observer.Recorder.exec_latency_ms r.recorder in
    Format.printf "%s on %d replicas, %d clients, %.0f req/s each:@."
      (Exp_common.protocol_name proto)
      (Array.length setting.Exp_common.replica_dcs)
      (Array.length setting.Exp_common.client_dcs)
      rate;
    Format.printf "  submitted %d, committed %d@."
      (Observer.Recorder.submitted r.recorder)
      (Observer.Recorder.committed r.recorder);
    Format.printf "  commit latency: %a@." Domino_stats.Summary.pp_brief commit;
    Format.printf "  exec   latency: %a@." Domino_stats.Summary.pp_brief exec;
    (match r.extra with
    | [] ->
      if r.fast_commits + r.slow_commits > 0 then
        Format.printf "  fast commits: %d, slow: %d@." r.fast_commits
          r.slow_commits
    | extra ->
      Format.printf "  %s:@." (Exp_common.protocol_name proto);
      List.iter (fun (k, v) -> Format.printf "    %s = %d@." k v) extra);
    (match r.store_fingerprints with
    | x :: rest when List.for_all (fun y -> y = x) rest ->
      Format.printf "  replicas converged ✓@."
    | _ -> Format.printf "  WARNING: replica state diverged@.");
    Format.printf "  stable storage: %d records synced%s%s@." r.sync_writes
      (if no_durability then " (durability OFF)" else "")
      (match r.recovery_ms with
      | [] -> ""
      | spans ->
        Printf.sprintf ", %d recoveries (max replay %.2f ms)"
          (List.length spans)
          (List.fold_left Float.max 0. spans));
    (match metrics_out with
    | Some file ->
      write_file file (Domino_obs.Metrics.to_json_string r.metrics);
      Format.printf "  metrics written to %s@." file
    | None -> ());
    (match journal with
    | None -> ()
    | Some j ->
      Format.printf "@.";
      Domino_stats.Tablefmt.print
        (Domino_obs.Provenance.to_table r.provenance);
      (match Domino_obs.Journal.dropped j with
      | 0 -> ()
      | d ->
        Format.eprintf
          "domino-sim: journal ring overflowed, oldest %d events lost@." d);
      (match journal_out with
      | Some file ->
        write_file file (Domino_obs.Journal.to_lines j);
        Format.printf "  journal written to %s@." file
      | None -> ());
      (match perfetto_out with
      | Some file ->
        write_file file (Domino_obs.Perfetto.to_string ?timeline j);
        Format.printf "  perfetto trace written to %s@." file
      | None -> ());
      if check then run_checker j);
    (match (timeline, timeline_out) with
    | Some tl, Some file ->
      write_file file (Domino_obs.Timeline.to_csv tl);
      Format.printf "  timeline written to %s@." file;
      let dips = Domino_obs.Dip.analyze tl in
      if dips <> [] then begin
        Format.printf "@.";
        Domino_stats.Tablefmt.print (Domino_obs.Dip.to_table dips)
      end
    | _ -> ());
    match trace_op with
    | Some n ->
      let tree = Domino_obs.Trace.span_tree r.trace in
      if tree = "" then
        Format.printf "@.no trace recorded: fewer than %d operations@." (n + 1)
      else Format.printf "@.%s" tree
    | None -> ()
  in
  let term =
    Term.(
      const action $ seed_arg $ scheduler_arg $ setting_arg
      $ protocol_name_arg $ duration $ rate $ alpha $ additional_delay
      $ percentile $ metrics_out $ trace_op $ fsync_us $ batch_sync_us
      $ no_durability $ journal_out_arg $ perfetto_out_arg $ timeline_out_arg
      $ timeline_window_arg $ faults_arg $ check_arg)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate one protocol over a WAN deployment")
    term

(* --- probe --- *)

let probe_cmd =
  let src =
    Arg.(value & opt string "VA" & info [ "src" ] ~docv:"DC" ~doc:"Source datacenter.")
  in
  let dst =
    Arg.(value & opt string "WA" & info [ "dst" ] ~docv:"DC" ~doc:"Destination datacenter.")
  in
  let minutes =
    Arg.(value & opt int 10 & info [ "minutes" ] ~docv:"MIN" ~doc:"Trace length.")
  in
  let action seed src dst minutes =
    let open Domino_net in
    let open Domino_trace in
    let spec = Trace_gen.azure_pair Topology.globe ~src ~dst in
    let probes =
      Trace_gen.generate ~duration:(Time_ns.sec (minutes * 60)) ~seed spec
    in
    let s = Trace_analysis.fig1_summary probes in
    Format.printf "%s -> %s, %d probes over %d min:@." src dst
      (Array.length probes) minutes;
    Format.printf "  RTT min/p50/p95/p99: %.1f / %.1f / %.1f / %.1f ms@."
      s.minimum s.p50 s.p95 s.p99;
    List.iter
      (fun p ->
        let rate =
          Trace_analysis.prediction_rate ~window:(Time_ns.sec 1) ~percentile:p
            probes
        in
        Format.printf "  correct prediction rate at p%.0f (1s window): %.1f%%@."
          p (100. *. rate))
      [ 50.; 90.; 95.; 99. ];
    Format.printf "  p99 misprediction: half-RTT %.2fms, Domino OWD %.2fms@."
      (Trace_analysis.p99_misprediction_half_rtt ~window:(Time_ns.sec 1)
         ~percentile:95. probes)
      (Trace_analysis.p99_misprediction_owd ~window:(Time_ns.sec 1)
         ~percentile:95. probes)
  in
  Cmd.v
    (Cmd.info "probe" ~doc:"Analyse delay predictability for a datacenter pair")
    Term.(const action $ seed_arg $ src $ dst $ minutes)

(* --- geometry --- *)

let geometry_cmd =
  let action () = List.iter Domino_stats.Tablefmt.print (Exp_geometry.tables ()) in
  Cmd.v
    (Cmd.info "geometry" ~doc:"Run the paper's §4 placement analysis")
    Term.(const action $ const ())

(* --- experiment --- *)

let experiment_cmd =
  let ids =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ID"
          ~doc:"Experiment ids (default: all). Use $(b,--list) to enumerate.")
  in
  let paper =
    Arg.(
      value & flag
      & info [ "paper" ] ~doc:"Paper-scale runs (slow; default is quick scale).")
  in
  let list_only =
    Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids and exit.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Independent simulation runs to execute in parallel (default: \
             all cores). Output is byte-identical for every value.")
  in
  let rebalance =
    Arg.(
      value & flag
      & info [ "rebalance" ]
          ~doc:
            "Smoke runs only: let the hot-shard detector trigger live slot \
             migrations (auto-rebalance) instead of the experiment's planned \
             migration plan. Only the $(b,rebalance) experiment honors it.")
  in
  let action seed scheduler paper list_only jobs ids journal_out perfetto_out
      timeline_out timeline_window faults_file check rebalance =
    Engine.set_default_scheduler scheduler;
    let faults = load_plan faults_file in
    (match jobs with
    | Some n -> (
      (try Domino_par.Par.set_jobs n
       with Invalid_argument msg ->
         Format.eprintf "domino-sim: %s@." msg;
         exit 2);
      let phys = Domino_par.Par.physical_cores () in
      if n > phys then
        Format.eprintf
          "domino-sim: warning: --jobs %d exceeds the %d physical cores; \
           extra jobs only add scheduling noise@."
          n phys)
    | None -> ());
    if list_only then
      List.iter
        (fun e ->
          Format.printf "%-10s %s@." e.Exp_registry.id e.Exp_registry.describe)
        (List.sort
           (fun a b -> compare a.Exp_registry.id b.Exp_registry.id)
           Exp_registry.all)
    else if journal_out <> None || perfetto_out <> None || timeline_out <> None
            || check || faults <> None || rebalance
    then begin
      (* Flight-record one experiment's smoke run instead of printing
         its tables. *)
      let entry =
        match ids with
        | [ id ] -> (
          match Exp_registry.find id with
          | Some e -> e
          | None ->
            Format.eprintf "domino-sim: unknown experiment %S (try --list)@."
              id;
            exit 2)
        | _ ->
          Format.eprintf
            "domino-sim: --journal-out/--perfetto-out/--faults/--check take \
             exactly one experiment id@.";
          exit 2
      in
      match entry.Exp_registry.smoke with
      | None ->
        Format.eprintf "domino-sim: experiment %S has no flight-recorded run@."
          entry.Exp_registry.id;
        exit 2
      | Some smoke ->
        (* Online: the aggregator rides the run's journal tap. The
           result is byte-identical to offline replay of the journal
           (a QCheck-pinned equality), and it exercises the live
           router's attribution path — which is the point of the CI's
           online-vs-offline `cmp` on migration runs. *)
        let agg =
          match timeline_out with
          | None -> None
          | Some _ ->
            Some
              (Domino_obs.Timeline.create
                 ~window:(timeline_window_span timeline_window)
                 ~group_resolver:Domino_shard.Slots.resolver_of_mark ())
        in
        let j = smoke ~seed ?faults ~rebalance ?timeline:agg () in
        (match journal_out with
        | Some file ->
          write_file file (Domino_obs.Journal.to_lines j);
          Format.printf "journal written to %s (%d events)@." file
            (Domino_obs.Journal.length j)
        | None -> ());
        let timeline = Option.map Domino_obs.Timeline.finish agg in
        (match (timeline, timeline_out) with
        | Some tl, Some file ->
          write_file file (Domino_obs.Timeline.to_csv tl);
          Format.printf "timeline written to %s@." file
        | _ -> ());
        (match perfetto_out with
        | Some file ->
          write_file file (Domino_obs.Perfetto.to_string ?timeline j);
          Format.printf "perfetto trace written to %s@." file
        | None -> ());
        if check then run_checker j
    end
    else begin
      let entries =
        match ids with
        | [] -> Exp_registry.all
        | ids ->
          List.map
            (fun id ->
              match Exp_registry.find id with
              | Some e -> e
              | None ->
                Format.eprintf
                  "domino-sim: unknown experiment %S (try --list)@." id;
                exit 2)
            ids
      in
      (* Aliases (fig4, fig12b) resolve to their canonical entry; run
         each entry once even if named twice. *)
      let entries =
        List.fold_left
          (fun acc e ->
            if List.exists (fun s -> s.Exp_registry.id = e.Exp_registry.id) acc
            then acc
            else e :: acc)
          [] entries
        |> List.rev
      in
      List.iter
        (fun e ->
          Format.printf "=== %s: %s ===@." e.Exp_registry.id
            e.Exp_registry.describe;
          List.iter Domino_stats.Tablefmt.print
            (e.Exp_registry.run ~quick:(not paper) ~seed);
          Format.printf "@.")
        entries
    end
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate one (or all) of the paper's tables and figures")
    Term.(
      const action $ seed_arg $ scheduler_arg $ paper $ list_only $ jobs $ ids
      $ journal_out_arg $ perfetto_out_arg $ timeline_out_arg
      $ timeline_window_arg $ faults_arg $ check_arg $ rebalance)

(* --- analyze --- *)

let analyze_cmd =
  let journal_file =
    Arg.(
      required
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Journal file to analyze (as written by --journal-out; any \
             chaos or golden journal in the repo works).")
  in
  let csv_out =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Write the per-window timeline CSV to $(docv).")
  in
  let gauges_csv_out =
    Arg.(
      value & opt (some string) None
      & info [ "gauges-csv" ] ~docv:"FILE"
          ~doc:"Write the per-window sampled-gauge CSV to $(docv).")
  in
  let dips_csv_out =
    Arg.(
      value & opt (some string) None
      & info [ "dips-csv" ] ~docv:"FILE"
          ~doc:"Write the per-fault dip report CSV to $(docv).")
  in
  let json_out =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write timeline + dip reports as one JSON document to $(docv).")
  in
  let per_node =
    Arg.(
      value & flag
      & info [ "per-node" ]
          ~doc:"Include per-node rows in the timeline CSV output.")
  in
  let action journal_file window_ms csv_out gauges_csv_out dips_csv_out
      json_out per_node =
    let contents =
      match open_in_bin journal_file with
      | ic ->
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      | exception Sys_error msg ->
        Format.eprintf "domino-sim: %s@." msg;
        exit 2
    in
    let j =
      match Domino_obs.Journal.of_lines contents with
      | Ok j -> j
      | Error msg ->
        Format.eprintf "domino-sim: %s: %s@." journal_file msg;
        exit 2
    in
    let tl = timeline_of_journal ~window:(timeline_window_span window_ms) j in
    let dips = Domino_obs.Dip.analyze tl in
    Domino_stats.Tablefmt.print (Domino_obs.Timeline.summary_table tl);
    Format.printf "@.";
    if dips = [] then Format.printf "no fault events in this journal@."
    else Domino_stats.Tablefmt.print (Domino_obs.Dip.to_table dips);
    let write what file contents =
      write_file file contents;
      Format.printf "%s written to %s@." what file
    in
    Option.iter
      (fun f -> write "timeline CSV" f (Domino_obs.Timeline.to_csv ~per_node tl))
      csv_out;
    Option.iter
      (fun f -> write "gauges CSV" f (Domino_obs.Timeline.gauges_to_csv tl))
      gauges_csv_out;
    Option.iter
      (fun f -> write "dips CSV" f (Domino_obs.Dip.to_csv dips))
      dips_csv_out;
    Option.iter
      (fun f ->
        write "JSON" f
          (Domino_stats.Json.to_string_pretty
             (Domino_stats.Json.Obj
                [
                  ("timeline", Domino_obs.Timeline.to_json tl);
                  ("dips", Domino_obs.Dip.to_json dips);
                ])
          ^ "\n"))
      json_out
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Replay a journal file into a fixed-window timeline and per-fault \
          dip/recovery report (deterministic CSV/JSON output)")
    Term.(
      const action $ journal_file $ timeline_window_arg $ csv_out
      $ gauges_csv_out $ dips_csv_out $ json_out $ per_node)

let default =
  Term.(ret (const (`Help (`Pager, None))))

let () =
  let info =
    Cmd.info "domino-sim" ~version:"1.0.0"
      ~doc:"Domino (CoNEXT'20) reproduction: simulate, probe, analyse"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ run_cmd; probe_cmd; geometry_cmd; experiment_cmd; analyze_cmd ]))
